package experiments

import (
	"fmt"

	"ibsim/internal/cache"
	"ibsim/internal/fetch"
	"ibsim/internal/memsys"
	"ibsim/internal/stats"
	"ibsim/internal/synth"
	"ibsim/internal/vm"
)

// Ablations: design-choice studies the paper discusses in footnotes and
// asides, reproduced as first-class experiments.

// ------------------------------------------------- Sub-block allocation

// SubBlockResult compares the paper's footnote 1 of Section 5.2: "a 64-byte
// line with 16-byte sub-block allocation can perform almost as well as a
// 16-byte line with 3 line prefetch".
type SubBlockResult struct {
	// Line16Prefetch3 is the 16-B line + 3-line sequential prefetch CPI.
	Line16Prefetch3 float64
	// Line64SubBlock16 is the 64-B line with 16-B sub-block fill CPI.
	Line64SubBlock16 float64
	// Line64Plain is the plain 64-B line CPI for reference.
	Line64Plain float64
}

// AblationSubBlock runs the comparison over the IBS suite at 16 B/cycle.
func AblationSubBlock(opt Options) (*SubBlockResult, error) {
	opt = opt.withDefaults()
	link := memsys.L1L2Link()
	res := &SubBlockResult{}
	var err error
	if res.Line16Prefetch3, _, err = suiteMeanEngineCPI(ibsProfiles(), opt, func() (fetch.Engine, error) {
		return fetch.NewBlocking(baseL1WithLine(16), link, 3)
	}); err != nil {
		return nil, err
	}
	if res.Line64SubBlock16, _, err = suiteMeanEngineCPI(ibsProfiles(), opt, func() (fetch.Engine, error) {
		// The sector cache refills only the missing sub-block and all
		// subsequent sub-blocks in the line; the engine charges exactly
		// those bytes.
		cfg := baseL1WithLine(64)
		cfg.SubBlock = 16
		return fetch.NewBlocking(cfg, link, 0)
	}); err != nil {
		return nil, err
	}
	if res.Line64Plain, _, err = suiteMeanEngineCPI(ibsProfiles(), opt, func() (fetch.Engine, error) {
		return fetch.NewBlocking(baseL1WithLine(64), link, 0)
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the comparison.
func (r *SubBlockResult) Render() string {
	header := []string{"Configuration", "L1 CPIinstr"}
	rows := [][]string{
		{"16-B line, 3-line prefetch", f3(r.Line16Prefetch3)},
		{"64-B line, 16-B sub-block allocation", f3(r.Line64SubBlock16)},
		{"64-B line (plain)", f3(r.Line64Plain)},
	}
	return renderTable("Ablation: sub-block allocation vs small-line prefetch (Section 5.2 footnote)", header, rows)
}

// ------------------------------------------------- Page-allocation policy

// PagePolicyRow is one allocation policy's behavior in a physically-indexed
// cache.
type PagePolicyRow struct {
	Policy vm.Policy
	// MeanMPI is the across-trials mean misses per 100 instructions.
	MeanMPI float64
	// StdDev is the across-trials standard deviation (the Figure 5
	// quantity; careful policies should crush it).
	StdDev float64
}

// PagePolicyResult extends Figure 5's discussion: the paper argues
// associativity beats after-the-fact conflict removal (CML buffers); the OS
// page-allocation policies it cites (page coloring, bin hopping) are the
// software alternative. This ablation measures all four allocators on one
// workload and cache.
type PagePolicyResult struct {
	Workload string
	SizeKB   int
	Rows     []PagePolicyRow
}

// AblationPagePolicy measures each policy on verilog in a 64-KB
// direct-mapped physically-indexed cache.
func AblationPagePolicy(opt Options) (*PagePolicyResult, error) {
	opt = opt.withDefaults()
	const sizeKB = 64
	p, err := synth.Lookup("verilog")
	if err != nil {
		return nil, err
	}
	refs, err := synth.InstrTrace(p, opt.Seed, opt.Instructions)
	if err != nil {
		return nil, err
	}
	res := &PagePolicyResult{Workload: p.Name, SizeKB: sizeKB}
	colors := sizeKB * 1024 / 4096
	for _, pol := range []vm.Policy{vm.RandomAlloc, vm.Sequential, vm.PageColoring, vm.BinHopping} {
		var sample stats.Sample
		for trial := 0; trial < opt.Trials; trial++ {
			mapper, err := vm.NewMapper(vm.Config{Policy: pol, Colors: colors, Seed: p.Seed})
			if err != nil {
				return nil, err
			}
			mapper.ResetTrial(uint64(trial))
			c := cache.MustNew(cache.Config{Size: sizeKB * 1024, LineSize: 32, Assoc: 1})
			for _, r := range refs {
				c.Access(mapper.Translate(r.Addr, r.Domain))
			}
			st := c.Stats()
			sample.Add(100 * float64(st.Misses) / float64(st.Accesses))
		}
		res.Rows = append(res.Rows, PagePolicyRow{
			Policy: pol, MeanMPI: sample.Mean(), StdDev: sample.StdDev(),
		})
	}
	return res, nil
}

// Render prints the policy table.
func (r *PagePolicyResult) Render() string {
	header := []string{"Page-allocation policy", "Mean MPI (per 100)", "Std dev across trials"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Policy.String(), f2(row.MeanMPI), fmt.Sprintf("%.4f", row.StdDev)})
	}
	title := fmt.Sprintf("Ablation: OS page-allocation policy (%s, %d-KB DM physically-indexed)", r.Workload, r.SizeKB)
	return renderTable(title, header, rows)
}

// ------------------------------------------------- Replacement policy

// ReplacementRow is one replacement policy's miss ratio.
type ReplacementRow struct {
	Policy cache.Replacement
	Assoc  int
	MPI    float64 // per 100 instructions
}

// ReplacementResult measures LRU vs FIFO vs random replacement on the IBS
// suite — all the paper's experiments assume LRU; this quantifies how much
// that assumption is worth at each associativity.
type ReplacementResult struct {
	Rows []ReplacementRow
}

// AblationReplacement sweeps policies × associativities for the 8-KB L1.
func AblationReplacement(opt Options) (*ReplacementResult, error) {
	opt = opt.withDefaults()
	res := &ReplacementResult{}
	assocs := []int{2, 4, 8}
	policies := []cache.Replacement{cache.LRU, cache.FIFO, cache.Random}
	for _, a := range assocs {
		for _, pol := range policies {
			cfg := cache.Config{Size: 8192, LineSize: 32, Assoc: a, Replacement: pol, Seed: 42}
			mpi, err := suiteMeanMPI(ibsProfiles(), cfg, opt)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, ReplacementRow{Policy: pol, Assoc: a, MPI: 100 * mpi})
		}
	}
	return res, nil
}

// Render prints the policy × associativity grid.
func (r *ReplacementResult) Render() string {
	header := []string{"Associativity", "LRU", "FIFO", "random"}
	byKey := map[[2]int]float64{}
	assocSet := map[int]bool{}
	for _, row := range r.Rows {
		byKey[[2]int{row.Assoc, int(row.Policy)}] = row.MPI
		assocSet[row.Assoc] = true
	}
	var rows [][]string
	for a := 1; a <= 64; a *= 2 {
		if !assocSet[a] {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d-way", a),
			f2(byKey[[2]int{a, int(cache.LRU)}]),
			f2(byKey[[2]int{a, int(cache.FIFO)}]),
			f2(byKey[[2]int{a, int(cache.Random)}]),
		})
	}
	return renderTable("Ablation: replacement policy (IBS average MPI per 100, 8-KB L1)", header, rows)
}
