package experiments

import (
	"fmt"
	"strings"

	"ibsim/internal/cache"
	"ibsim/internal/fetch"
	"ibsim/internal/memsys"
	"ibsim/internal/stats"
	"ibsim/internal/sweep"
	"ibsim/internal/synth"
	"ibsim/internal/threec"
	"ibsim/internal/trace"
	"ibsim/internal/vm"
)

// ---------------------------------------------------------------- Figure 1

// Figure1Point is one cache size's miss decomposition, in misses per 100
// instructions.
type Figure1Point struct {
	SizeKB     int
	Capacity   float64
	Conflict   float64
	Compulsory float64
	Total      float64
}

// Figure1Result reproduces "Capacity and Conflict Misses in SPEC92 and IBS":
// suite-average MPI decomposed by the Three-Cs model over cache sizes
// 8–256 KB (direct-mapped totals; conflict = DM − 8-way; 32-byte lines).
type Figure1Result struct {
	SPEC []Figure1Point
	IBS  []Figure1Point
}

// figure1Sizes are the cache capacities (KB) both suites are swept over.
func figure1Sizes() []int { return []int{8, 16, 32, 64, 128, 256} }

// Figure1 runs the Three-Cs decomposition for both suites. The default path
// computes each workload's whole capacity curve — every size's direct-mapped
// total and 8-way capacity reference, plus the first-touch count — in ONE
// sweep-engine pass; Options.PerConfig selects the original
// two-simulations-per-size ClassifyApprox path. Both produce bit-identical
// Breakdowns.
func Figure1(opt Options) (*Figure1Result, error) {
	opt = opt.withDefaults()
	if opt.PerConfig {
		return figure1PerConfig(opt)
	}
	return figure1Sweep(opt)
}

// figure1Suites fills a Figure1Result from a per-suite point builder.
func figure1Suites(build func(profiles []synth.Profile) ([]Figure1Point, error)) (*Figure1Result, error) {
	res := &Figure1Result{}
	var err error
	if res.SPEC, err = build(specProfiles()); err != nil {
		return nil, err
	}
	if res.IBS, err = build(ibsProfiles()); err != nil {
		return nil, err
	}
	return res, nil
}

// figure1Accumulate reduces per-profile breakdowns (profile-major, size-minor)
// into suite-mean points, in misses per 100 instructions.
func figure1Accumulate(sizes []int, per [][]threec.Breakdown, nProfiles int) []Figure1Point {
	points := make([]Figure1Point, len(sizes))
	for i, kb := range sizes {
		points[i].SizeKB = kb
	}
	n := float64(nProfiles)
	for _, out := range per {
		for i := range sizes {
			points[i].Capacity += 100 * out[i].CapacityMPI() / n
			points[i].Conflict += 100 * out[i].ConflictMPI() / n
			points[i].Compulsory += 100 * out[i].CompulsoryMPI() / n
			points[i].Total += 100 * out[i].MPI() / n
		}
	}
	return points
}

// figure1PerConfig is the original reference path: ClassifyApprox runs its
// own direct-mapped and 8-way simulations for every size.
func figure1PerConfig(opt Options) (*Figure1Result, error) {
	sizes := figure1Sizes()
	return figure1Suites(func(profiles []synth.Profile) ([]Figure1Point, error) {
		per, err := mapTraces(profiles, opt, func(p synth.Profile, refs []trace.Ref) ([]threec.Breakdown, error) {
			out := make([]threec.Breakdown, len(sizes))
			for i, kb := range sizes {
				b, err := threec.ClassifyApprox(kb*1024, 32, trace.NewSliceSource(refs))
				if err != nil {
					return nil, err
				}
				out[i] = b
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		return figure1Accumulate(sizes, per, len(profiles)), nil
	})
}

// figure1Sweep computes the same breakdowns from a single sweep-engine pass
// per workload: the grid holds each size's direct-mapped cell and its 8-way
// capacity-reference cell, and first touches come from the pass's distinct
// count, so 2·|sizes| cache simulations collapse into one trace traversal.
func figure1Sweep(opt Options) (*Figure1Result, error) {
	sizes := figure1Sizes()
	const lineSize = 32
	return figure1Suites(func(profiles []synth.Profile) ([]Figure1Point, error) {
		per, err := mapTraces(profiles, opt, func(p synth.Profile, refs []trace.Ref) ([]threec.Breakdown, error) {
			cells := make([]sweep.Cell, 0, 2*len(sizes))
			for _, kb := range sizes {
				lines := kb * 1024 / lineSize
				aref := threec.ApproxAssocRef(lines)
				cells = append(cells,
					sweep.Cell{Sets: lines, Assoc: 1},
					sweep.Cell{Sets: lines / aref, Assoc: aref})
			}
			m, err := sweep.Pass{LineSize: lineSize, Cells: cells, CountDistinct: true, Ctx: opt.ctx()}.Run(refs)
			if err != nil {
				return nil, err
			}
			out := make([]threec.Breakdown, len(sizes))
			for i := range sizes {
				out[i] = threec.FromApproxCounts(m.Accesses, m.Distinct, m.Misses[2*i], m.Misses[2*i+1])
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		return figure1Accumulate(sizes, per, len(profiles)), nil
	})
}

// Render prints both series.
func (f *Figure1Result) Render() string {
	render := func(name string, pts []Figure1Point) string {
		header := []string{"I-cache Size (KB)", "Capacity", "Conflict", "Compulsory", "Total MPI"}
		var rows [][]string
		for _, p := range pts {
			rows = append(rows, []string{
				fmt.Sprintf("%d", p.SizeKB), f2(p.Capacity), f2(p.Conflict), f2(p.Compulsory), f2(p.Total),
			})
		}
		return renderTable("Figure 1 ("+name+"): misses per 100 instructions", header, rows)
	}
	return render("SPEC92", f.SPEC) + "\n" + render("IBS", f.IBS)
}

// ---------------------------------------------------------------- Figure 3

// Figure3Point is one L2 configuration's total CPIinstr.
type Figure3Point struct {
	L2SizeKB   int
	L2LineSize int
	L1CPI      float64
	L2CPI      float64
}

// Total returns L1 + L2 CPIinstr.
func (p Figure3Point) Total() float64 { return p.L1CPI + p.L2CPI }

// Figure3Result reproduces "Total CPIinstr vs. L2 Line Size": an on-chip
// direct-mapped L2 added to both baselines, swept over L2 size and line
// size. The L1 is the 8-KB baseline behind the 6-cycle/16-B-per-cycle
// on-chip link.
type Figure3Result struct {
	// Economy and HighPerf hold points for every (size, line) combination.
	Economy  []Figure3Point
	HighPerf []Figure3Point
	// Baselines are the no-L2 reference lines (Table 5 values).
	EconomyBase, HighPerfBase float64
}

// figure3Grid is the swept L2 geometry: sizes in KB × line sizes in bytes.
func figure3Grid() (sizesKB, lines []int) {
	return []int{16, 32, 64, 128, 256}, []int{8, 16, 32, 64, 128, 256}
}

// figure3Key indexes one (L2 size, L2 line size) grid cell.
type figure3Key struct{ kb, line int }

// figure3PerProfile carries one workload's contribution to every Figure 3
// number: the grid cells (economy, high-performance CPIinstr pairs) and the
// three baseline-L1 CPIs.
type figure3PerProfile struct {
	cells               map[figure3Key][2]float64
	l1, ecoBase, hpBase float64
}

// Figure3 runs the sweep. The default path computes every workload's whole
// size × line grid with one single-pass sweep per line size plus analytic
// CPI reconstruction (fetch.BlockingResult); Options.PerConfig selects the
// original one-engine-simulation-per-cell path. The two paths render
// byte-identical output.
func Figure3(opt Options) (*Figure3Result, error) {
	opt = opt.withDefaults()
	var per []figure3PerProfile
	var err error
	profiles := ibsProfiles()
	if opt.PerConfig {
		per, err = figure3PerConfig(profiles, opt)
	} else {
		per, err = figure3Sweep(profiles, opt)
	}
	if err != nil {
		return nil, err
	}
	return figure3Assemble(profiles, per), nil
}

// figure3Assemble reduces per-profile results (profile order) into the
// suite-mean figure. The accumulation — one += v/n term per profile per
// value, in profile order — is shared by both execution paths, so equal
// per-profile CPIs guarantee equal (bitwise) figure output.
func figure3Assemble(profiles []synth.Profile, per []figure3PerProfile) *Figure3Result {
	sizesKB, lines := figure3Grid()
	res := &Figure3Result{}
	var l1 float64
	n := float64(len(profiles))
	for _, out := range per {
		l1 += out.l1 / n
		res.EconomyBase += out.ecoBase / n
		res.HighPerfBase += out.hpBase / n
	}
	ecoCPI := map[figure3Key]float64{}
	hpCPI := map[figure3Key]float64{}
	for _, out := range per {
		for k, v := range out.cells {
			ecoCPI[k] += v[0] / n
			hpCPI[k] += v[1] / n
		}
	}
	for _, kb := range sizesKB {
		for _, line := range lines {
			k := figure3Key{kb, line}
			res.Economy = append(res.Economy, Figure3Point{L2SizeKB: kb, L2LineSize: line, L1CPI: l1, L2CPI: ecoCPI[k]})
			res.HighPerf = append(res.HighPerf, Figure3Point{L2SizeKB: kb, L2LineSize: line, L1CPI: l1, L2CPI: hpCPI[k]})
		}
	}
	return res
}

// figure3PerConfig is the original reference path: one full blocking-engine
// simulation per (size, line, memory) cell plus three baseline simulations,
// workloads in parallel.
func figure3PerConfig(profiles []synth.Profile, opt Options) ([]figure3PerProfile, error) {
	sizesKB, lines := figure3Grid()
	return mapTraces(profiles, opt, func(p synth.Profile, refs []trace.Ref) (figure3PerProfile, error) {
		out := figure3PerProfile{cells: map[figure3Key][2]float64{}}
		for _, kb := range sizesKB {
			for _, line := range lines {
				cfg := cache.Config{Size: kb * 1024, LineSize: line, Assoc: 1}
				eco, err := fetch.NewBlocking(cfg, memsys.Economy().Memory, 0)
				if err != nil {
					return figure3PerProfile{}, err
				}
				hp, err := fetch.NewBlocking(cfg, memsys.HighPerformance().Memory, 0)
				if err != nil {
					return figure3PerProfile{}, err
				}
				out.cells[figure3Key{kb, line}] = [2]float64{
					fetch.Run(eco, refs).CPIinstr(),
					fetch.Run(hp, refs).CPIinstr(),
				}
			}
		}
		for _, probe := range []struct {
			link memsys.Transfer
			dst  *float64
		}{
			{memsys.L1L2Link(), &out.l1},
			{memsys.Economy().Memory, &out.ecoBase},
			{memsys.HighPerformance().Memory, &out.hpBase},
		} {
			e, err := fetch.NewBlocking(BaseL1(), probe.link, 0)
			if err != nil {
				return figure3PerProfile{}, err
			}
			*probe.dst = fetch.Run(e, refs).CPIinstr()
		}
		return out, nil
	})
}

// figure3Sweep computes the same per-profile numbers with one sweep-engine
// pass per line size: the pass yields every capacity's miss count at once,
// and fetch.BlockingResult turns each count into the exact CPIinstr a
// blocking engine would report for any memory link — 63 engine simulations
// per workload collapse into 6 trace traversals and integer arithmetic.
func figure3Sweep(profiles []synth.Profile, opt Options) ([]figure3PerProfile, error) {
	sizesKB, lines := figure3Grid()
	base := BaseL1()
	return mapTraces(profiles, opt, func(p synth.Profile, refs []trace.Ref) (figure3PerProfile, error) {
		out := figure3PerProfile{cells: map[figure3Key][2]float64{}}
		n := int64(len(refs))
		for _, line := range lines {
			cells := make([]sweep.Cell, 0, len(sizesKB)+1)
			for _, kb := range sizesKB {
				cells = append(cells, sweep.Cell{Sets: kb * 1024 / line, Assoc: 1})
			}
			if line == base.LineSize {
				// Ride the 8-KB baseline L1 along on this pass: the same miss
				// count serves all three baseline links.
				cells = append(cells, sweep.Cell{Sets: base.Size / base.LineSize, Assoc: 1})
			}
			m, err := sweep.Pass{LineSize: line, Cells: cells, Ctx: opt.ctx()}.Run(refs)
			if err != nil {
				return figure3PerProfile{}, err
			}
			for i, kb := range sizesKB {
				out.cells[figure3Key{kb, line}] = [2]float64{
					fetch.BlockingResult(n, m.Misses[i], line, memsys.Economy().Memory).CPIinstr(),
					fetch.BlockingResult(n, m.Misses[i], line, memsys.HighPerformance().Memory).CPIinstr(),
				}
			}
			if line == base.LineSize {
				miss := m.Misses[len(sizesKB)]
				out.l1 = fetch.BlockingResult(n, miss, base.LineSize, memsys.L1L2Link()).CPIinstr()
				out.ecoBase = fetch.BlockingResult(n, miss, base.LineSize, memsys.Economy().Memory).CPIinstr()
				out.hpBase = fetch.BlockingResult(n, miss, base.LineSize, memsys.HighPerformance().Memory).CPIinstr()
			}
		}
		return out, nil
	})
}

// Render prints both panels as size × line matrices of total CPIinstr.
func (f *Figure3Result) Render() string {
	panel := func(name string, pts []Figure3Point, base float64) string {
		lineSet := map[int]bool{}
		sizeSet := map[int]bool{}
		for _, p := range pts {
			lineSet[p.L2LineSize] = true
			sizeSet[p.L2SizeKB] = true
		}
		var lines, sizes []int
		for l := 8; l <= 4096; l *= 2 {
			if lineSet[l] {
				lines = append(lines, l)
			}
		}
		for s := 1; s <= 4096; s *= 2 {
			if sizeSet[s] {
				sizes = append(sizes, s)
			}
		}
		header := []string{"L2 size \\ line"}
		for _, l := range lines {
			header = append(header, fmt.Sprintf("%dB", l))
		}
		byKey := map[[2]int]Figure3Point{}
		for _, p := range pts {
			byKey[[2]int{p.L2SizeKB, p.L2LineSize}] = p
		}
		var rows [][]string
		for _, s := range sizes {
			row := []string{fmt.Sprintf("%dKB", s)}
			for _, l := range lines {
				row = append(row, f2(byKey[[2]int{s, l}].Total()))
			}
			rows = append(rows, row)
		}
		title := fmt.Sprintf("Figure 3 (%s): Total CPIinstr vs L2 size and line size (baseline %.2f)", name, base)
		return renderTable(title, header, rows)
	}
	return panel("economy", f.Economy, f.EconomyBase) + "\n" + panel("high-performance", f.HighPerf, f.HighPerfBase)
}

// ---------------------------------------------------------------- Figure 4

// Figure4Point is one associativity's total CPIinstr for a 64-KB L2.
type Figure4Point struct {
	Assoc int
	L1CPI float64
	L2CPI float64
}

// Total returns L1 + L2 CPIinstr.
func (p Figure4Point) Total() float64 { return p.L1CPI + p.L2CPI }

// Figure4Result reproduces "CPIinstr vs. L2 Associativity" (64-KB on-chip
// L2, 64-byte lines, both baselines).
type Figure4Result struct {
	Economy  []Figure4Point
	HighPerf []Figure4Point
}

// figure4PerProfile carries one workload's contribution to Figure 4: per
// associativity the (economy, high-performance) CPIinstr pair, plus the
// baseline-L1 CPI.
type figure4PerProfile struct {
	byAssoc [][2]float64
	l1      float64
}

// figure4Assocs are the swept L2 associativities.
func figure4Assocs() []int { return []int{1, 2, 4, 8} }

// Figure4 runs the associativity sweep. The default path resolves all four
// associativities of the 64-KB L2 from one single-pass sweep (per-set LRU
// stack distances settle every depth at once) plus a second tiny pass for
// the baseline L1; Options.PerConfig selects the original
// one-simulation-per-associativity path. Both render byte-identical output.
func Figure4(opt Options) (*Figure4Result, error) {
	opt = opt.withDefaults()
	profiles := ibsProfiles()
	var per []figure4PerProfile
	var err error
	if opt.PerConfig {
		per, err = figure4PerConfig(profiles, opt)
	} else {
		per, err = figure4Sweep(profiles, opt)
	}
	if err != nil {
		return nil, err
	}
	assocs := figure4Assocs()
	res := &Figure4Result{}
	var l1 float64
	eco := make([]float64, len(assocs))
	hp := make([]float64, len(assocs))
	n := float64(len(profiles))
	for _, out := range per {
		l1 += out.l1 / n
	}
	for _, out := range per {
		for i := range assocs {
			eco[i] += out.byAssoc[i][0] / n
			hp[i] += out.byAssoc[i][1] / n
		}
	}
	for i, a := range assocs {
		res.Economy = append(res.Economy, Figure4Point{Assoc: a, L1CPI: l1, L2CPI: eco[i]})
		res.HighPerf = append(res.HighPerf, Figure4Point{Assoc: a, L1CPI: l1, L2CPI: hp[i]})
	}
	return res, nil
}

// figure4PerConfig is the original reference path: one blocking-engine
// simulation per associativity per memory, plus the baseline simulation.
func figure4PerConfig(profiles []synth.Profile, opt Options) ([]figure4PerProfile, error) {
	assocs := figure4Assocs()
	return mapTraces(profiles, opt, func(p synth.Profile, refs []trace.Ref) (figure4PerProfile, error) {
		out := figure4PerProfile{byAssoc: make([][2]float64, len(assocs))}
		for i, a := range assocs {
			cfg := cache.Config{Size: 64 * 1024, LineSize: 64, Assoc: a}
			e, err := fetch.NewBlocking(cfg, memsys.Economy().Memory, 0)
			if err != nil {
				return figure4PerProfile{}, err
			}
			h, err := fetch.NewBlocking(cfg, memsys.HighPerformance().Memory, 0)
			if err != nil {
				return figure4PerProfile{}, err
			}
			out.byAssoc[i] = [2]float64{fetch.Run(e, refs).CPIinstr(), fetch.Run(h, refs).CPIinstr()}
		}
		e, err := fetch.NewBlocking(BaseL1(), memsys.L1L2Link(), 0)
		if err != nil {
			return figure4PerProfile{}, err
		}
		out.l1 = fetch.Run(e, refs).CPIinstr()
		return out, nil
	})
}

// figure4Sweep computes the same numbers from two sweep passes per workload:
// a 64-byte-line pass whose grid holds the 64-KB capacity at every
// associativity, and a 32-byte-line pass for the baseline L1.
func figure4Sweep(profiles []synth.Profile, opt Options) ([]figure4PerProfile, error) {
	assocs := figure4Assocs()
	base := BaseL1()
	return mapTraces(profiles, opt, func(p synth.Profile, refs []trace.Ref) (figure4PerProfile, error) {
		out := figure4PerProfile{byAssoc: make([][2]float64, len(assocs))}
		n := int64(len(refs))
		const l2Size, l2Line = 64 * 1024, 64
		cells := make([]sweep.Cell, len(assocs))
		for i, a := range assocs {
			cells[i] = sweep.Cell{Sets: l2Size / l2Line / a, Assoc: a}
		}
		m, err := sweep.Pass{LineSize: l2Line, Cells: cells, Ctx: opt.ctx()}.Run(refs)
		if err != nil {
			return figure4PerProfile{}, err
		}
		for i := range assocs {
			out.byAssoc[i] = [2]float64{
				fetch.BlockingResult(n, m.Misses[i], l2Line, memsys.Economy().Memory).CPIinstr(),
				fetch.BlockingResult(n, m.Misses[i], l2Line, memsys.HighPerformance().Memory).CPIinstr(),
			}
		}
		mb, err := sweep.Pass{LineSize: base.LineSize, Cells: []sweep.Cell{{Sets: base.Size / base.LineSize, Assoc: 1}}, Ctx: opt.ctx()}.Run(refs)
		if err != nil {
			return figure4PerProfile{}, err
		}
		out.l1 = fetch.BlockingResult(n, mb.Misses[0], base.LineSize, memsys.L1L2Link()).CPIinstr()
		return out, nil
	})
}

// Render prints both panels.
func (f *Figure4Result) Render() string {
	header := []string{"L2 Associativity", "Economy Total CPIinstr", "High-Perf Total CPIinstr"}
	var rows [][]string
	for i := range f.Economy {
		rows = append(rows, []string{
			fmt.Sprintf("%d-way", f.Economy[i].Assoc),
			f2(f.Economy[i].Total()),
			f2(f.HighPerf[i].Total()),
		})
	}
	return renderTable("Figure 4: CPIinstr vs L2 Associativity (64-KB L2, 64-B lines)", header, rows)
}

// ---------------------------------------------------------------- Figure 5

// Figure5Point is the CPIinstr variability of one (workload, size, assoc)
// configuration across trials.
type Figure5Point struct {
	Workload string
	SizeKB   int
	Assoc    int
	// MeanCPI and StdDev are over Options.Trials runs with different random
	// page mappings.
	MeanCPI float64
	StdDev  float64
}

// Figure5Result reproduces "Variability in CPIinstr versus I-cache Size and
// Associativity": physically-indexed caches with random page allocation,
// five trials per point.
type Figure5Result struct {
	Points []Figure5Point
}

// figure5Workloads are the four workloads the paper plots.
func figure5Workloads() []string { return []string{"verilog", "gs", "eqntott", "espresso"} }

// Figure5 runs the variability experiment. The miss penalty is the
// DECstation's 6 cycles, matching the Tapeworm measurement platform.
func Figure5(opt Options) (*Figure5Result, error) {
	opt = opt.withDefaults()
	sizesKB := []int{4, 8, 16, 32, 64, 128, 256, 512, 1024}
	assocs := []int{1, 2, 4}
	const missPenalty = 6.0
	res := &Figure5Result{}
	var profiles []synth.Profile
	for _, name := range figure5Workloads() {
		p, err := synth.Lookup(name)
		if err != nil {
			return nil, err
		}
		profiles = append(profiles, p)
	}
	per, err := mapTraces(profiles, opt, func(p synth.Profile, refs []trace.Ref) ([]Figure5Point, error) {
		var points []Figure5Point
		for _, kb := range sizesKB {
			for _, a := range assocs {
				var sample stats.Sample
				for trial := 0; trial < opt.Trials; trial++ {
					mapper := vm.MustNewMapper(vm.Config{
						Policy: vm.RandomAlloc,
						Seed:   p.Seed*1000 + uint64(kb)*10 + uint64(a),
					})
					mapper.ResetTrial(uint64(trial))
					c := cache.MustNew(cache.Config{Size: kb * 1024, LineSize: 32, Assoc: a})
					for _, r := range refs {
						c.Access(mapper.Translate(r.Addr, r.Domain))
					}
					st := c.Stats()
					mpi := float64(st.Misses) / float64(st.Accesses)
					sample.Add(mpi * missPenalty)
				}
				points = append(points, Figure5Point{
					Workload: p.Name, SizeKB: kb, Assoc: a,
					MeanCPI: sample.Mean(), StdDev: sample.StdDev(),
				})
			}
		}
		return points, nil
	})
	if err != nil {
		return nil, err
	}
	for _, pts := range per {
		res.Points = append(res.Points, pts...)
	}
	return res, nil
}

// Render prints one panel per workload.
func (f *Figure5Result) Render() string {
	var b strings.Builder
	for _, name := range figure5Workloads() {
		header := []string{"I-cache Size (KB)", "1-way sd", "2-way sd", "4-way sd"}
		byKey := map[[2]int]Figure5Point{}
		var sizes []int
		seen := map[int]bool{}
		for _, p := range f.Points {
			if p.Workload != name {
				continue
			}
			byKey[[2]int{p.SizeKB, p.Assoc}] = p
			if !seen[p.SizeKB] {
				seen[p.SizeKB] = true
				sizes = append(sizes, p.SizeKB)
			}
		}
		var rows [][]string
		for _, kb := range sizes {
			rows = append(rows, []string{
				fmt.Sprintf("%d", kb),
				fmt.Sprintf("%.4f", byKey[[2]int{kb, 1}].StdDev),
				fmt.Sprintf("%.4f", byKey[[2]int{kb, 2}].StdDev),
				fmt.Sprintf("%.4f", byKey[[2]int{kb, 4}].StdDev),
			})
		}
		b.WriteString(renderTable("Figure 5 ("+name+"): std dev of CPIinstr across page-mapping trials", header, rows))
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 6

// Figure6Point is one (bandwidth, line size) cell.
type Figure6Point struct {
	BytesPerCycle int
	LineSize      int
	L1CPI         float64
}

// Figure6Result reproduces "Bandwidth and L1 CPIinstr vs. Line Size": the
// 8-KB direct-mapped L1 behind a 6-cycle link at several bandwidths, with
// the full-line-refill stall model.
type Figure6Result struct {
	Points []Figure6Point
}

// Figure6 runs the sweep: one bank of 35 blocking engines per workload in
// (bandwidth, line) order. Every engine in the bank is prefetch-free, so the
// fan-out driver's analytic dedup collapses the five bandwidths sharing each
// line size into one simulated replay — 7 per workload instead of 35.
func Figure6(opt Options) (*Figure6Result, error) {
	opt = opt.withDefaults()
	bws := []int{4, 8, 16, 32, 64}
	lines := []int{4, 8, 16, 32, 64, 128, 256}
	res := &Figure6Result{}
	profiles := ibsProfiles()
	per, err := mapBanks(profiles, opt, func() ([]fetch.Engine, error) {
		engines := make([]fetch.Engine, 0, len(bws)*len(lines))
		for _, bw := range bws {
			for _, l := range lines {
				e, err := fetch.NewBlocking(baseL1WithLine(l), memsys.Transfer{Latency: 6, BytesPerCycle: bw}, 0)
				if err != nil {
					return nil, err
				}
				engines = append(engines, e)
			}
		}
		return engines, nil
	})
	if err != nil {
		return nil, err
	}
	acc := map[[2]int]float64{}
	for _, bank := range per {
		k := 0
		for _, bw := range bws {
			for _, l := range lines {
				acc[[2]int{bw, l}] += bank[k].CPIinstr() / float64(len(profiles))
				k++
			}
		}
	}
	for _, bw := range bws {
		for _, l := range lines {
			res.Points = append(res.Points, Figure6Point{BytesPerCycle: bw, LineSize: l, L1CPI: acc[[2]int{bw, l}]})
		}
	}
	return res, nil
}

// Optimal returns the line size minimizing L1 CPIinstr for a bandwidth.
func (f *Figure6Result) Optimal(bytesPerCycle int) (lineSize int, cpi float64) {
	cpi = -1
	for _, p := range f.Points {
		if p.BytesPerCycle != bytesPerCycle {
			continue
		}
		if cpi < 0 || p.L1CPI < cpi {
			cpi = p.L1CPI
			lineSize = p.LineSize
		}
	}
	return lineSize, cpi
}

// Render prints the bandwidth × line-size matrix with optima marked.
func (f *Figure6Result) Render() string {
	bwSet := map[int]bool{}
	lineSet := map[int]bool{}
	for _, p := range f.Points {
		bwSet[p.BytesPerCycle] = true
		lineSet[p.LineSize] = true
	}
	var bws, lines []int
	for v := 1; v <= 1024; v *= 2 {
		if bwSet[v] {
			bws = append(bws, v)
		}
		if lineSet[v] {
			lines = append(lines, v)
		}
	}
	header := []string{"bandwidth \\ line"}
	for _, l := range lines {
		header = append(header, fmt.Sprintf("%dB", l))
	}
	byKey := map[[2]int]float64{}
	for _, p := range f.Points {
		byKey[[2]int{p.BytesPerCycle, p.LineSize}] = p.L1CPI
	}
	var rows [][]string
	for _, bw := range bws {
		opt, _ := f.Optimal(bw)
		row := []string{fmt.Sprintf("%d B/cyc", bw)}
		for _, l := range lines {
			cell := f3(byKey[[2]int{bw, l}])
			if l == opt {
				cell += "*"
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	return renderTable("Figure 6: L1 CPIinstr vs line size and bandwidth (8-KB DM; * = optimal line)", header, rows)
}

// ---------------------------------------------------------------- Figure 7

// Figure7Rung is one rung of the cumulative-optimization ladder.
type Figure7Rung struct {
	Name  string
	L1CPI float64
	L2CPI float64
}

// Total returns the rung's total CPIinstr.
func (r Figure7Rung) Total() float64 { return r.L1CPI + r.L2CPI }

// Figure7Result reproduces "Summary of L1 and L2 Cache Optimizations": the
// cumulative effect of adding an on-chip 8-way L2, raising L1–L2 bandwidth,
// prefetching, bypassing, and pipelining with stream buffers, for both
// baseline configurations.
type Figure7Result struct {
	Economy  []Figure7Rung
	HighPerf []Figure7Rung
}

// Figure7 runs the ladder: one bank of nine engines per workload — the two
// L2 contributions, the five L1 rungs, and the two baselines. Four of the
// nine are analytic blocking engines sharing a geometry with another bank
// member (the two L2s; the two baselines and the 32-B rung), so the fan-out
// driver simulates six replays per workload instead of nine.
func Figure7(opt Options) (*Figure7Result, error) {
	opt = opt.withDefaults()
	res := &Figure7Result{}
	profiles := ibsProfiles()

	// L2: 64-KB, 8-way, 64-byte lines, behind each baseline memory (the
	// paper's methodology simulates the L2 over the full instruction
	// stream). L1 rungs are identical for both configurations; only the L2
	// differs. The paper fixes the L1–L2 interface at 16 bytes/cycle once
	// bandwidth is tuned ("we fixed the L1-L2 interface at 16 bytes/cycle
	// and used this configuration to examine the effects of prefetching,
	// bypassing and pipelining"); the Bandwidth rung is the Figure 6 optimum
	// at that rate — a 64-byte line.
	l2cfg := cache.Config{Size: 64 * 1024, LineSize: 64, Assoc: 8}
	base16 := memsys.L1L2Link() // 6 cycles, 16 B/cyc
	mks := []func() (fetch.Engine, error){
		func() (fetch.Engine, error) { return fetch.NewBlocking(l2cfg, memsys.Economy().Memory, 0) },
		func() (fetch.Engine, error) { return fetch.NewBlocking(l2cfg, memsys.HighPerformance().Memory, 0) },
		func() (fetch.Engine, error) { return fetch.NewBlocking(BaseL1(), base16, 0) },           // 32-B line, on-chip L2
		func() (fetch.Engine, error) { return fetch.NewBlocking(baseL1WithLine(64), base16, 0) }, // tuned line
		func() (fetch.Engine, error) { return fetch.NewBlocking(baseL1WithLine(16), base16, 3) },
		func() (fetch.Engine, error) { return fetch.NewBypass(baseL1WithLine(16), base16, 3) },
		func() (fetch.Engine, error) { return fetch.NewStream(baseL1WithLine(16), base16, 18) },
		func() (fetch.Engine, error) { return fetch.NewBlocking(BaseL1(), memsys.Economy().Memory, 0) },
		func() (fetch.Engine, error) { return fetch.NewBlocking(BaseL1(), memsys.HighPerformance().Memory, 0) },
	}
	per, err := mapBanks(profiles, opt, func() ([]fetch.Engine, error) {
		engines := make([]fetch.Engine, len(mks))
		for i, mk := range mks {
			e, err := mk()
			if err != nil {
				return nil, err
			}
			engines[i] = e
		}
		return engines, nil
	})
	if err != nil {
		return nil, err
	}
	var vals [9]float64
	n := float64(len(profiles))
	for _, bank := range per {
		for k := range vals {
			vals[k] += bank[k].CPIinstr() / n
		}
	}
	l2eco, l2hp := vals[0], vals[1]
	l1Base32, l1Wide, l1Prefetch, l1Bypass, l1Pipe := vals[2], vals[3], vals[4], vals[5], vals[6]
	ecoBase, hpBase := vals[7], vals[8]

	ladder := func(l2 float64, base float64) []Figure7Rung {
		return []Figure7Rung{
			{Name: "Baseline", L1CPI: base, L2CPI: 0},
			{Name: "On-Chip L2", L1CPI: l1Base32, L2CPI: l2},
			{Name: "Bandwidth", L1CPI: l1Wide, L2CPI: l2},
			{Name: "Prefetching", L1CPI: l1Prefetch, L2CPI: l2},
			{Name: "Bypassing", L1CPI: l1Bypass, L2CPI: l2},
			{Name: "Pipelining", L1CPI: l1Pipe, L2CPI: l2},
		}
	}
	res.Economy = ladder(l2eco, ecoBase)
	res.HighPerf = ladder(l2hp, hpBase)
	return res, nil
}

// Render prints both ladders.
func (f *Figure7Result) Render() string {
	panel := func(name string, rungs []Figure7Rung) string {
		header := []string{"Optimization", "L1 CPIinstr", "L2 CPIinstr", "Total"}
		var rows [][]string
		for _, r := range rungs {
			rows = append(rows, []string{r.Name, f2(r.L1CPI), f2(r.L2CPI), f2(r.Total())})
		}
		return renderTable("Figure 7 ("+name+"): cumulative optimizations", header, rows)
	}
	return panel("economy", f.Economy) + "\n" + panel("high-performance", f.HighPerf)
}
