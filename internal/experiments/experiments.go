// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment has a constructor returning a structured
// result plus a Render method that prints rows/series in the layout of the
// paper's exhibit; cmd/ibstables and bench_test.go are thin wrappers over
// this package.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"ibsim/internal/cache"
	"ibsim/internal/fetch"
	"ibsim/internal/memsys"
	"ibsim/internal/replay"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

// Options control experiment scale. The zero value is usable: defaults are
// applied by (&Options{}).withDefaults().
type Options struct {
	// Instructions is the per-workload instruction budget (default 2M; the
	// paper used ~25M-reference traces per workload).
	Instructions int64
	// Seed offsets every workload's generation seed; 0 keeps the shipped
	// profile seeds (the calibrated configuration).
	Seed uint64
	// Trials is the number of Tapeworm-style repeat runs for variability
	// experiments (default 5, as in Figure 5).
	Trials int
	// Serial forces the per-workload runners (mapTraces, mapProfiles) onto
	// a single goroutine. Results must be bit-identical to the parallel
	// path — internal/check and the differential tests in this package
	// enforce that — so Serial exists as the trusted reference executor,
	// not as a semantic switch.
	Serial bool
	// Workers bounds concurrent per-workload runners. 0 (the default) means
	// auto: one worker per GOMAXPROCS. Each worker holds one workload's
	// trace (~16 bytes/instruction), so Workers also caps peak memory;
	// shrink it on small machines, raise it past GOMAXPROCS to overlap
	// generation with simulation. Ignored when Serial is set.
	Workers int
	// PerConfig forces the accelerated experiments onto their original
	// one-full-simulation-per-configuration paths: Figures 1, 3, and 4 fall
	// back from the single-pass sweep engine (internal/sweep), and Tables
	// 5-8 plus Figures 6/7 fall back from the fan-out replay driver
	// (internal/replay) to per-engine fetch.Run over the expanded trace.
	// Every pair of paths renders byte-identical output — internal/check's
	// sweep and fanout differentials enforce that — so PerConfig exists as
	// the trusted reference executor, not as a semantic switch.
	PerConfig bool
	// Context, when non-nil, cancels the experiment: in-flight workers
	// observe cancellation at their next trace acquisition or sweep
	// checkpoint and the run returns ctx.Err(). Nil means Background (run to
	// completion).
	Context context.Context
	// Timeout, when positive, bounds one experiment's wall-clock time.
	// Orchestrators (cmd/ibstables) derive a per-exhibit deadline context
	// from it; the experiment functions themselves only consume Context.
	Timeout time.Duration
}

// ctx resolves Options.Context, never returning nil.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (o Options) withDefaults() Options {
	if o.Instructions <= 0 {
		o.Instructions = 2_000_000
	}
	if o.Trials <= 0 {
		o.Trials = 5
	}
	return o
}

// workers resolves the per-workload concurrency bound: 1 when Serial,
// Options.Workers when set, otherwise GOMAXPROCS.
func (o Options) workers() int {
	if o.Serial {
		return 1
	}
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Canonical configurations shared by the Section 5 experiments.

// BaseL1 returns the paper's constrained primary cache: 8-KB direct-mapped,
// 32-byte lines.
func BaseL1() cache.Config {
	return cache.Config{Size: 8192, LineSize: 32, Assoc: 1}
}

// baseL1WithLine returns the base L1 with a different line size.
func baseL1WithLine(lineSize int) cache.Config {
	return cache.Config{Size: 8192, LineSize: lineSize, Assoc: 1}
}

// ibsProfiles returns the Mach IBS suite, the workload set Section 5
// evaluates against.
func ibsProfiles() []synth.Profile { return synth.IBSMach() }

// specProfiles returns the SPEC92 representatives.
func specProfiles() []synth.Profile { return synth.SPEC92() }

// WorkerError is a worker panic converted into an error: one workload's
// simulation blowing up fails its experiment with an attributable, typed
// error instead of crashing the whole process.
type WorkerError struct {
	// Workload names the unit of work that panicked (usually a profile
	// name).
	Workload string
	// Index is the worker's position in the runner's input order.
	Index int
	// Recovered is the value the panic carried.
	Recovered any
	// Stack is the panicking goroutine's stack at recovery.
	Stack string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("experiments: worker %q (index %d) panicked: %v", e.Workload, e.Index, e.Recovered)
}

// forEachTrace acquires each profile's instruction-only trace from the
// shared store and hands it to f; the reference is released after each call,
// so live memory stays bounded to one workload at a time plus whatever the
// store keeps warm within its idle budget. Cancelling opt.Context stops the
// walk between (and inside) acquisitions.
func forEachTrace(profiles []synth.Profile, opt Options, f func(p synth.Profile, refs []trace.Ref) error) error {
	ctx := opt.ctx()
	for _, p := range profiles {
		if err := ctx.Err(); err != nil {
			return err
		}
		refs, release, err := synth.DefaultStore.InstrCtx(ctx, p, opt.Seed, opt.Instructions)
		if err != nil {
			return err
		}
		err = f(p, refs)
		release()
		if err != nil {
			return err
		}
	}
	return nil
}

// mapTraces runs worker over every profile's instruction trace concurrently
// and returns per-profile results in profile order, so reductions stay
// deterministic regardless of scheduling. Traces come from the shared
// synth.DefaultStore: every experiment in the process that needs the same
// (workload, seed, n) stream shares one generation. With opt.Serial the
// profiles run one at a time on the calling goroutine — the differential
// reference path.
func mapTraces[T any](profiles []synth.Profile, opt Options, worker func(p synth.Profile, refs []trace.Ref) (T, error)) ([]T, error) {
	run := func(ctx context.Context, i int) (T, error) {
		refs, release, err := synth.DefaultStore.InstrCtx(ctx, profiles[i], opt.Seed, opt.Instructions)
		if err != nil {
			var zero T
			return zero, err
		}
		defer release()
		return worker(profiles[i], refs)
	}
	return mapOrdered(opt.ctx(), len(profiles), opt.workers(), profileName(profiles), run)
}

// mapBanks replays every profile's instruction trace through a bank of
// fetch engines and returns, in profile order, each profile's per-engine
// Results in bank order — the one-pass-per-workload primitive behind Tables
// 5-8 and Figures 6/7. mk builds a fresh bank per profile (engines are
// stateful). The default path acquires the memoized run-compacted trace
// (synth.DefaultStore.InstrRuns) and fans it out through replay.Replay —
// bulk FetchRun per engine plus analytic dedup of same-geometry blocking
// engines; opt.PerConfig selects the reference path, one fetch.Run over the
// expanded trace per engine. Both paths produce bit-identical Results
// (pinned by internal/check's fanout differential).
func mapBanks(profiles []synth.Profile, opt Options, mk func() ([]fetch.Engine, error)) ([][]fetch.Result, error) {
	run := func(ctx context.Context, i int) ([]fetch.Result, error) {
		engines, err := mk()
		if err != nil {
			return nil, err
		}
		if opt.PerConfig {
			refs, release, err := synth.DefaultStore.InstrCtx(ctx, profiles[i], opt.Seed, opt.Instructions)
			if err != nil {
				return nil, err
			}
			defer release()
			results := make([]fetch.Result, len(engines))
			for j, e := range engines {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				results[j] = fetch.Run(e, refs)
			}
			return results, nil
		}
		_, runs, release, err := synth.DefaultStore.InstrRuns(ctx, profiles[i], opt.Seed, opt.Instructions)
		if err != nil {
			return nil, err
		}
		defer release()
		return replay.Replay(ctx, runs, engines)
	}
	return mapOrdered(opt.ctx(), len(profiles), opt.workers(), profileName(profiles), run)
}

// mapProfiles runs worker over profiles concurrently (bounded by
// opt.workers) and returns results in profile order. Unlike mapTraces, the
// worker generates its own reference stream — used by whole-system
// experiments that need interleaved data references.
func mapProfiles[T any](profiles []synth.Profile, opt Options, worker func(p synth.Profile) (T, error)) ([]T, error) {
	return mapOrdered(opt.ctx(), len(profiles), opt.workers(), profileName(profiles),
		func(_ context.Context, i int) (T, error) {
			return worker(profiles[i])
		})
}

// profileName labels runner indices with workload names for WorkerError.
func profileName(profiles []synth.Profile) func(int) string {
	return func(i int) string { return profiles[i].Name }
}

// isCancel reports whether err is pure cancellation noise (as opposed to the
// failure that caused it).
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// mapOrdered executes run(0..n-1) on at most workers goroutines (inline on
// the caller when workers <= 1) and returns the results in index order with
// the first error. The runner is resilient: a worker panic is recovered into
// a *WorkerError naming the workload, the first real failure cancels the
// context handed to sibling workers (so they stop at their next trace
// acquisition or sweep checkpoint instead of running to completion), and
// cancellation of the caller's ctx stops the whole map. When both a real
// error and cancellation errors are present, the real error wins — the
// cancellation is its consequence, not the cause.
func mapOrdered[T any](ctx context.Context, n, workers int, nameOf func(int) string, run func(ctx context.Context, i int) (T, error)) ([]T, error) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]T, n)
	errs := make([]error, n)
	call := func(i int) {
		defer func() {
			if rec := recover(); rec != nil {
				errs[i] = &WorkerError{Workload: nameOf(i), Index: i, Recovered: rec, Stack: string(debug.Stack())}
			}
			if errs[i] != nil && !isCancel(errs[i]) {
				cancel() // first real failure stops the siblings
			}
		}()
		results[i], errs[i] = run(cctx, i)
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := cctx.Err(); err != nil {
				errs[i] = err
				break
			}
			call(i)
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if err := cctx.Err(); err != nil {
					errs[i] = err
					return
				}
				call(i)
			}(i)
		}
		wg.Wait()
	}
	var firstCancel error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !isCancel(err) {
			return nil, err
		}
		if firstCancel == nil {
			firstCancel = err
		}
	}
	if firstCancel != nil {
		return nil, firstCancel
	}
	return results, nil
}

// PanicIsolationSelfTest drives a deliberately panicking worker through the
// parallel runner and returns the resulting error, which must be a typed
// *WorkerError naming the victim workload — the fault-injection harness
// (ibscheck -faults) uses it to prove one bad config cannot crash a run.
func PanicIsolationSelfTest(opt Options) error {
	profiles := ibsProfiles()
	victim := profiles[len(profiles)/2].Name
	_, err := mapProfiles(profiles, opt.withDefaults(), func(p synth.Profile) (int, error) {
		if p.Name == victim {
			panic(fmt.Sprintf("injected fault in %s", p.Name))
		}
		return 0, nil
	})
	return err
}

// meanOf averages per-profile scalars in order.
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// suiteMeanMPI simulates one cache geometry over every profile and returns
// the suite-mean misses per instruction.
func suiteMeanMPI(profiles []synth.Profile, cfg cache.Config, opt Options) (float64, error) {
	per, err := mapTraces(profiles, opt, func(p synth.Profile, refs []trace.Ref) (float64, error) {
		c, err := cache.New(cfg)
		if err != nil {
			return 0, err
		}
		for _, r := range refs {
			c.Access(r.Addr)
		}
		st := c.Stats()
		return float64(st.Misses) / float64(st.Accesses), nil
	})
	return meanOf(per), err
}

// suiteMeanEngineCPI runs an engine factory over every profile and returns
// the suite-mean CPIinstr (and MPI).
func suiteMeanEngineCPI(profiles []synth.Profile, opt Options, mk func() (fetch.Engine, error)) (cpiMean, mpiMean float64, err error) {
	per, err := mapTraces(profiles, opt, func(p synth.Profile, refs []trace.Ref) ([2]float64, error) {
		e, err := mk()
		if err != nil {
			return [2]float64{}, err
		}
		res := fetch.Run(e, refs)
		return [2]float64{res.CPIinstr(), res.MPI()}, nil
	})
	if err != nil {
		return 0, 0, err
	}
	for _, v := range per {
		cpiMean += v[0] / float64(len(per))
		mpiMean += v[1] / float64(len(per))
	}
	return cpiMean, mpiMean, nil
}

// l1CPI returns the suite-mean L1 CPIinstr for a blocking L1 behind the
// given link.
func l1CPI(profiles []synth.Profile, cfg cache.Config, link memsys.Transfer, opt Options) (float64, error) {
	c, _, err := suiteMeanEngineCPI(profiles, opt, func() (fetch.Engine, error) {
		return fetch.NewBlocking(cfg, link, 0)
	})
	return c, err
}

// l2CPI returns the suite-mean L2 contribution: an L2 cache of the given
// geometry backed by mem, simulated over the full instruction stream (the
// paper's methodology for the L2 contribution).
func l2CPI(profiles []synth.Profile, l2 cache.Config, mem memsys.Transfer, opt Options) (float64, error) {
	c, _, err := suiteMeanEngineCPI(profiles, opt, func() (fetch.Engine, error) {
		return fetch.NewBlocking(l2, mem, 0)
	})
	return c, err
}

// renderTable aligns rows of cells into a text table. Header cells are
// separated from body rows by a rule.
func renderTable(title string, header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteString("\n")
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
