package experiments

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

// A worker panic must surface as a typed *WorkerError naming the workload —
// on the parallel path and on the serial reference path alike — and must not
// crash the process.
func TestWorkerPanicIsolated(t *testing.T) {
	profiles := ibsProfiles()
	victim := profiles[1].Name
	for _, opt := range []Options{{Instructions: 1000}, {Instructions: 1000, Serial: true}} {
		_, err := mapTraces(profiles, opt.withDefaults(), func(p synth.Profile, refs []trace.Ref) (int, error) {
			if p.Name == victim {
				panic("boom")
			}
			return len(refs), nil
		})
		var we *WorkerError
		if !errors.As(err, &we) {
			t.Fatalf("serial=%v: err = %v, want *WorkerError", opt.Serial, err)
		}
		if we.Workload != victim {
			t.Fatalf("panic attributed to %q, want %q", we.Workload, victim)
		}
		if we.Recovered != "boom" || !strings.Contains(we.Stack, "resilience_test") {
			t.Fatalf("WorkerError missing payload or stack: %+v", we)
		}
	}
	if err := PanicIsolationSelfTest(Options{Instructions: 1000}); err == nil {
		t.Fatal("PanicIsolationSelfTest reported no error")
	} else {
		var we *WorkerError
		if !errors.As(err, &we) {
			t.Fatalf("self-test err = %v, want *WorkerError", err)
		}
	}
}

// The first real failure must win over the cancellations it causes, and must
// stop siblings from starting fresh work.
func TestFirstErrorCancelsSiblings(t *testing.T) {
	boom := errors.New("workload exploded")
	var started atomic.Int32
	n := 64
	_, err := mapOrdered(context.Background(), n, 4,
		func(i int) string { return "w" },
		func(ctx context.Context, i int) (int, error) {
			started.Add(1)
			if i == 0 {
				return 0, boom
			}
			// Cooperative workers notice cancellation promptly.
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(50 * time.Millisecond):
				return i, nil
			}
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the real failure, not a cancellation", err)
	}
	if got := started.Load(); got >= int32(n) {
		t.Fatalf("all %d workers started despite early failure", got)
	}
}

// A cancelled caller context stops mapTraces with the context error.
func TestMapTracesHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{Instructions: 1000, Context: ctx}
	_, err := mapTraces(ibsProfiles(), opt.withDefaults(), func(p synth.Profile, refs []trace.Ref) (int, error) {
		return len(refs), nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := forEachTrace(ibsProfiles(), opt.withDefaults(), func(p synth.Profile, refs []trace.Ref) error {
		return nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("forEachTrace err = %v, want context.Canceled", err)
	}
}

// Exhibits run to identical output with and without a generous deadline —
// the cancellation plumbing must not perturb results.
func TestContextPlumbingPreservesOutput(t *testing.T) {
	opt := Options{Instructions: 20000}
	plain, err := Table4(opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	withCtx, err := Table4(Options{Instructions: 20000, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Render() != withCtx.Render() {
		t.Fatal("context-carrying run rendered different output")
	}
}
