package experiments

import (
	"fmt"
	"strings"
)

// ASCII chart rendering for the exhibits that are bar charts in the paper
// (Figures 1 and 7). Each bar is stacked from labeled segments, scaled to a
// fixed width.

// chartSegment is one stacked component of a bar.
type chartSegment struct {
	value float64
	glyph byte
}

// chartBar is one labeled, stacked bar.
type chartBar struct {
	label    string
	segments []chartSegment
}

// total returns the bar's stacked height.
func (b chartBar) total() float64 {
	sum := 0.0
	for _, s := range b.segments {
		sum += s.value
	}
	return sum
}

// renderBars draws horizontal stacked bars scaled so the longest bar fills
// width glyphs, with the numeric total at the end of each bar.
func renderBars(title string, bars []chartBar, legend string, width int) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	maxTotal := 0.0
	labelWidth := 0
	for _, bar := range bars {
		if t := bar.total(); t > maxTotal {
			maxTotal = t
		}
		if len(bar.label) > labelWidth {
			labelWidth = len(bar.label)
		}
	}
	if maxTotal == 0 {
		maxTotal = 1
	}
	for _, bar := range bars {
		fmt.Fprintf(&b, "%-*s |", labelWidth, bar.label)
		drawn := 0
		want := 0.0
		for _, seg := range bar.segments {
			want += seg.value
			// Cumulative rounding keeps stacked segment widths consistent.
			upto := int(want/maxTotal*float64(width) + 0.5)
			for ; drawn < upto; drawn++ {
				b.WriteByte(seg.glyph)
			}
		}
		fmt.Fprintf(&b, "%s %.2f\n", strings.Repeat(" ", width-drawn+1), bar.total())
	}
	b.WriteString(legend)
	b.WriteString("\n")
	return b.String()
}

// RenderChart draws Figure 1 as the paper's stacked bars: capacity misses
// (#) under conflict misses (x), compulsory (.) on top, per cache size.
func (f *Figure1Result) RenderChart() string {
	panel := func(name string, pts []Figure1Point) string {
		var bars []chartBar
		for _, p := range pts {
			bars = append(bars, chartBar{
				label: fmt.Sprintf("%d KB", p.SizeKB),
				segments: []chartSegment{
					{p.Capacity, '#'},
					{p.Conflict, 'x'},
					{p.Compulsory, '.'},
				},
			})
		}
		return renderBars(
			fmt.Sprintf("Figure 1 (%s): misses per 100 instructions", name),
			bars, "legend: # capacity  x conflict  . compulsory", 50)
	}
	return panel("SPEC92", f.SPEC) + "\n" + panel("IBS", f.IBS)
}

// RenderChart draws Figure 7 as the paper's stacked bars: the L1 (#) and L2
// (x) CPIinstr contributions at each optimization rung.
func (f *Figure7Result) RenderChart() string {
	panel := func(name string, rungs []Figure7Rung) string {
		var bars []chartBar
		for _, r := range rungs {
			bars = append(bars, chartBar{
				label: r.Name,
				segments: []chartSegment{
					{r.L1CPI, '#'},
					{r.L2CPI, 'x'},
				},
			})
		}
		return renderBars(
			fmt.Sprintf("Figure 7 (%s): cumulative optimizations, total CPIinstr", name),
			bars, "legend: # L1 CPIinstr  x L2 CPIinstr", 50)
	}
	return panel("economy", f.Economy) + "\n" + panel("high-performance", f.HighPerf)
}
