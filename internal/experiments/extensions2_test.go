package experiments

import (
	"strings"
	"testing"
)

func TestExtensionCML(t *testing.T) {
	res, err := ExtensionCML(Options{Instructions: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.RandomDM <= 0 || res.CMLDM <= 0 {
		t.Fatalf("degenerate: %+v", res)
	}
	// CML should help the unmanaged random mapping...
	if res.CMLDM >= res.RandomDM {
		t.Errorf("CML (%.2f) did not improve on random (%.2f)", res.CMLDM, res.RandomDM)
	}
	if res.CMLRemaps == 0 {
		t.Error("CML never fired")
	}
	// ...and associativity should match or beat it (the paper's argument).
	if res.Random2Way > res.CMLDM*1.1 {
		t.Errorf("2-way (%.2f) much worse than CML (%.2f) — contradicts the paper's claim",
			res.Random2Way, res.CMLDM)
	}
	if !strings.Contains(res.Render(), "CML") {
		t.Error("render missing rows")
	}
}

func TestExtensionUnifiedL2(t *testing.T) {
	res, err := ExtensionUnifiedL2(Options{Instructions: 250_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.InstrOnly <= 0 {
		t.Fatal("zero instruction-only CPI")
	}
	// Data interference can only add instruction misses.
	if res.Unified < res.InstrOnly {
		t.Errorf("unified (%.3f) below instruction-only (%.3f)", res.Unified, res.InstrOnly)
	}
	// And it should add *something* measurable (the paper's lower-bound
	// caveat is not vacuous).
	if res.Unified < 1.02*res.InstrOnly {
		t.Errorf("data interference negligible: %.3f vs %.3f", res.Unified, res.InstrOnly)
	}
	if !strings.Contains(res.Render(), "unified") {
		t.Error("render missing rows")
	}
}

func TestExtensionAssocLatency(t *testing.T) {
	res, err := ExtensionAssocLatency(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	// The extra cycle must cost something at the L1.
	if res.L1PenalizedLookup <= res.L1FreeLookup {
		t.Errorf("7-cycle L1 CPI (%.3f) not above 6-cycle (%.3f)",
			res.L1PenalizedLookup, res.L1FreeLookup)
	}
	// 8-way must beat direct-mapped at the L2.
	if res.L2EightWay >= res.L2Direct {
		t.Errorf("8-way L2 (%.3f) not below direct-mapped (%.3f)", res.L2EightWay, res.L2Direct)
	}
	// The paper's implied verdict: associativity survives the extra cycle
	// (for the economy configuration, where L2 misses are expensive).
	if !res.Worthwhile() {
		t.Errorf("associativity lost to the lookup penalty: %+v", res)
	}
	if !strings.Contains(res.Render(), "footnote") {
		t.Error("render missing title")
	}
}

func TestExtensionInterleave(t *testing.T) {
	res, err := ExtensionInterleave(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Coarser interleaving (larger scale) must not increase misses:
	// monotone non-increasing MPI across the sweep (small wiggle allowed).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].MPI > res.Rows[i-1].MPI*1.03 {
			t.Errorf("MPI rose with coarser interleaving: %.2f (x%.2f) -> %.2f (x%.2f)",
				res.Rows[i-1].MPI, res.Rows[i-1].Scale, res.Rows[i].MPI, res.Rows[i].Scale)
		}
	}
	// The sweep should span a real effect: 0.25x vs 8x differ noticeably.
	if res.Rows[0].MPI < 1.15*res.Rows[len(res.Rows)-1].MPI {
		t.Errorf("interleaving sweep too flat: %.2f vs %.2f",
			res.Rows[0].MPI, res.Rows[len(res.Rows)-1].MPI)
	}
	if !strings.Contains(res.Render(), "interleaving") {
		t.Error("render missing title")
	}
}

func TestExtensionPredict(t *testing.T) {
	res, err := ExtensionPredict(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	seq := res.Rows[0]
	// The documented negative result: on synthetic workloads with
	// randomized control-transfer targets the predictor cannot beat the
	// sequential stream, but it must stay within a modest band of it (the
	// confidence hysteresis bounds the damage of unlearnable targets).
	for _, row := range res.Rows[1:] {
		if row.CPI > 2.0*seq.CPI {
			t.Errorf("predictor table %d (%.3f) catastrophically worse than sequential (%.3f)",
				row.TableEntries, row.CPI, seq.CPI)
		}
		if row.CPI < 0.5*seq.CPI {
			t.Errorf("predictor table %d (%.3f) implausibly better than sequential (%.3f) — the generator's targets are random by construction",
				row.TableEntries, row.CPI, seq.CPI)
		}
	}
	if !strings.Contains(res.Render(), "next-line predictor") {
		t.Error("render missing rows")
	}
}
