package experiments

import (
	"fmt"
	"strings"

	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

// Table2 renders the IBS workload inventory (the paper's Table 2 is
// descriptive: workload names, versions and the operating systems traced).
func Table2() string {
	header := []string{"Workload", "Description"}
	var rows [][]string
	for _, p := range synth.IBSMach() {
		rows = append(rows, []string{p.Name, p.Description})
	}
	rows = append(rows,
		[]string{"", ""},
		[]string{"OS: Ultrix", "Version 3.1 from Digital Equipment Corporation (monolithic model)"},
		[]string{"OS: Mach", "CMU Mach 3.0 microkernel + 4.3 BSD UNIX server (microkernel model)"},
	)
	return renderTable("Table 2: The IBS Workloads", header, rows)
}

// Figure2 renders the workload-structure inventory (the paper's Figure 2 is
// a component diagram): for each IBS workload, the protection domains it
// executes in, their code footprints, and their time shares.
func Figure2() string {
	var b strings.Builder
	b.WriteString("Figure 2: The Components of the SPEC92 and IBS Workloads\n\n")
	b.WriteString("SPEC92 workloads: a single user task over a monolithic kernel\n")
	b.WriteString("(OS used only to load text and for small file reads).\n\n")
	header := []string{"Workload", "Domain", "Procedures", "Text (KB)", "Time Share"}
	var rows [][]string
	for _, p := range synth.IBSMach() {
		for d := 0; d < trace.NumDomains; d++ {
			dp := p.Domains[d]
			if dp.TimeShare == 0 {
				continue
			}
			rows = append(rows, []string{
				p.Name,
				trace.Domain(d).String(),
				fmt.Sprintf("%d", dp.Procs),
				fmt.Sprintf("%.0f", float64(dp.Procs*dp.MeanProcBytes)/1024),
				pct(dp.TimeShare),
			})
		}
	}
	b.WriteString(renderTable("IBS under Mach 3.0: multi-domain structure", header, rows))
	return b.String()
}
