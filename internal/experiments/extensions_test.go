package experiments

import (
	"strings"
	"testing"
)

func TestExtensionVictim(t *testing.T) {
	res, err := ExtensionVictim(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Victim caches monotonically help and never beat the baseline upward.
	prev := res.Baseline
	for _, row := range res.Rows {
		if row.CPI > prev+1e-9 {
			t.Errorf("%d-line victim cache (%.3f) worse than previous (%.3f)", row.VictimLines, row.CPI, prev)
		}
		prev = row.CPI
	}
	// A 15-line victim cache recovers a meaningful part of the 2-way gap.
	gap := res.Baseline - res.TwoWay
	recovered := res.Baseline - res.Rows[len(res.Rows)-1].CPI
	if gap > 0 && recovered < 0.2*gap {
		t.Errorf("15-line victim cache recovered %.3f of the %.3f assoc gap", recovered, gap)
	}
	if !strings.Contains(res.Render(), "victim") {
		t.Error("render missing rows")
	}
}

func TestExtensionMultiStream(t *testing.T) {
	res, err := ExtensionMultiStream(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byKey := map[[2]int]float64{}
	for _, row := range res.Rows {
		byKey[[2]int{row.Ways, row.Depth}] = row.CPI
	}
	// More ways helps at fixed depth (IBS interleaves domains).
	for _, d := range []int{2, 4, 6} {
		if byKey[[2]int{4, d}] >= byKey[[2]int{1, d}] {
			t.Errorf("4-way (%.3f) not below 1-way (%.3f) at depth %d",
				byKey[[2]int{4, d}], byKey[[2]int{1, d}], d)
		}
	}
	// Deeper helps at fixed ways.
	if byKey[[2]int{2, 6}] >= byKey[[2]int{2, 2}] {
		t.Error("depth 6 not below depth 2 at 2 ways")
	}
	if !strings.Contains(res.Render(), "Stream ways") {
		t.Error("render missing grid")
	}
}

func TestExtensionIssueWidth(t *testing.T) {
	res, err := ExtensionIssueWidth(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.CPIinstr <= 0 {
		t.Fatal("zero floor")
	}
	// The paper's point: the share grows with issue width.
	if !(res.Rows[0].FetchShare < res.Rows[1].FetchShare && res.Rows[1].FetchShare < res.Rows[2].FetchShare) {
		t.Errorf("fetch share not increasing with issue width: %+v", res.Rows)
	}
	// At quad issue the floor should be a large share of execution.
	if res.Rows[2].FetchShare < 0.15 {
		t.Errorf("quad-issue fetch share %.2f implausibly small", res.Rows[2].FetchShare)
	}
	if !strings.Contains(res.Render(), "4-issue") {
		t.Error("render missing rows")
	}
}

func TestExtensionTLB(t *testing.T) {
	res, err := ExtensionTLB(Options{Instructions: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byKey := map[[2]int]float64{}
	for _, row := range res.Rows {
		byKey[[2]int{row.Entries, row.Assoc}] = row.MissesPer100
	}
	// Bigger TLBs miss less (fully associative column strictly monotone).
	prev := byKey[[2]int{16, 0}]
	for _, e := range []int{32, 64, 128, 256} {
		cur := byKey[[2]int{e, 0}]
		if cur > prev+1e-9 {
			t.Errorf("%d-entry TLB (%.3f) worse than smaller (%.3f)", e, cur, prev)
		}
		prev = cur
	}
	// Full associativity no worse than 4-way at every size.
	for _, e := range []int{16, 32, 64, 128, 256} {
		if byKey[[2]int{e, 0}] > byKey[[2]int{e, 4}]*1.25+1e-6 {
			t.Errorf("%d entries: fully-assoc (%.3f) much worse than 4-way (%.3f)",
				e, byKey[[2]int{e, 0}], byKey[[2]int{e, 4}])
		}
	}
	if !strings.Contains(res.Render(), "Entries") {
		t.Error("render missing header")
	}
}

func TestExtensionPlacement(t *testing.T) {
	res, err := ExtensionPlacement(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Profile-guided placement should reduce misses versus scattered.
	if res.HotPacked >= res.Scattered {
		t.Errorf("hot-packed layout (%.2f) not below scattered (%.2f)", res.HotPacked, res.Scattered)
	}
	if res.ScatteredAssoc >= res.Scattered {
		t.Errorf("2-way (%.2f) not below DM (%.2f)", res.ScatteredAssoc, res.Scattered)
	}
	if !strings.Contains(res.Render(), "profile-guided") {
		t.Error("render missing rows")
	}
}
