package experiments

import (
	"fmt"

	"ibsim/internal/cache"
	"ibsim/internal/fetch"
	"ibsim/internal/memsys"
	"ibsim/internal/sampling"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

// Methodology studies: validations of the simplifications the paper's
// experimental method (and ours) rests on.

// ---------------------------------------- Independent-levels approximation

// MethodologyRow is one workload's comparison of the combined two-level
// hierarchy against the paper's independent-levels sum.
type MethodologyRow struct {
	Workload    string
	Combined    float64 // combined hierarchy total CPIinstr
	Independent float64 // L1-with-perfect-L2 + L2-with-memory sum
	RelErr      float64 // (independent - combined) / combined
}

// MethodologyResult validates the paper's decomposition ("We determined the
// L1 contribution by simulating an L1 cache backed by a perfect L2... L2
// contribution is determined by simulating an L2 cache backed by main
// memory") against a combined simulation of the same hierarchy.
type MethodologyResult struct {
	Rows []MethodologyRow
}

// MethodologyValidation runs both methods per IBS workload (economy memory,
// 64-KB 8-way L2).
func MethodologyValidation(opt Options) (*MethodologyResult, error) {
	opt = opt.withDefaults()
	l2cfg := cache.Config{Size: 64 * 1024, LineSize: 64, Assoc: 8}
	mem := memsys.Economy().Memory
	link := memsys.L1L2Link()
	res := &MethodologyResult{}
	err := forEachTrace(ibsProfiles(), opt, func(p synth.Profile, refs []trace.Ref) error {
		comb, err := fetch.NewHierarchy(BaseL1(), l2cfg, link, mem)
		if err != nil {
			return err
		}
		fetch.Run(comb, refs)
		l1only, err := fetch.NewBlocking(BaseL1(), link, 0)
		if err != nil {
			return err
		}
		l2only, err := fetch.NewBlocking(l2cfg, mem, 0)
		if err != nil {
			return err
		}
		indep := fetch.Run(l1only, refs).CPIinstr() + fetch.Run(l2only, refs).CPIinstr()
		combTotal := comb.Result().CPIinstr()
		row := MethodologyRow{Workload: p.Name, Combined: combTotal, Independent: indep}
		if combTotal != 0 {
			row.RelErr = (indep - combTotal) / combTotal
		}
		res.Rows = append(res.Rows, row)
		return nil
	})
	return res, err
}

// Render prints the comparison.
func (r *MethodologyResult) Render() string {
	header := []string{"Workload", "Combined CPIinstr", "Independent sum", "Rel. error"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload, f3(row.Combined), f3(row.Independent),
			fmt.Sprintf("%+.1f%%", 100*row.RelErr),
		})
	}
	return renderTable("Methodology: independent-levels approximation vs combined hierarchy", header, rows)
}

// ---------------------------------------- Trace sampling

// SamplingRow is one sampling plan's error.
type SamplingRow struct {
	Mode     sampling.Mode
	Window   int64
	Coverage float64
	RelErr   float64
}

// SamplingResult quantifies sampled-simulation error on an IBS workload —
// the methodology question behind the paper's "the two agreed within a 5%
// margin of error" validation of its stall-captured traces, and behind any
// trap-driven tool (Tapeworm) that observes execution in windows.
type SamplingResult struct {
	Workload string
	FullMPI  float64
	Rows     []SamplingRow
}

// SamplingStudy sweeps warm and cold sampling plans on gs.
func SamplingStudy(opt Options) (*SamplingResult, error) {
	opt = opt.withDefaults()
	p, err := synth.Lookup("gs")
	if err != nil {
		return nil, err
	}
	refs, err := synth.InstrTrace(p, opt.Seed, opt.Instructions)
	if err != nil {
		return nil, err
	}
	res := &SamplingResult{Workload: p.Name}
	cfg := BaseL1()
	plans := []sampling.Plan{
		{Window: 2_000, Period: 20_000, Mode: sampling.Warm},
		{Window: 10_000, Period: 40_000, Mode: sampling.Warm},
		{Window: 2_000, Period: 20_000, Mode: sampling.Cold},
		{Window: 10_000, Period: 40_000, Mode: sampling.Cold},
		{Window: 50_000, Period: 200_000, Mode: sampling.Cold},
	}
	for _, plan := range plans {
		sampled, err := sampling.Run(cfg, refs, plan)
		if err != nil {
			return nil, err
		}
		if res.FullMPI == 0 {
			full, err := sampling.Run(cfg, refs, sampling.Plan{Window: 1, Period: 1})
			if err != nil {
				return nil, err
			}
			res.FullMPI = full.MPI()
		}
		relErr := 0.0
		if res.FullMPI != 0 {
			relErr = (sampled.MPI() - res.FullMPI) / res.FullMPI
		}
		res.Rows = append(res.Rows, SamplingRow{
			Mode: plan.Mode, Window: plan.Window,
			Coverage: sampled.Coverage(), RelErr: relErr,
		})
	}
	return res, nil
}

// Render prints the sweep.
func (r *SamplingResult) Render() string {
	header := []string{"Mode", "Window", "Coverage", "Rel. error vs full trace"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Mode.String(),
			fmt.Sprintf("%d", row.Window),
			pct(row.Coverage),
			fmt.Sprintf("%+.1f%%", 100*row.RelErr),
		})
	}
	title := fmt.Sprintf("Methodology: sampled simulation error (%s, full MPI %.4f)", r.Workload, r.FullMPI)
	return renderTable(title, header, rows)
}
