package experiments

import (
	"strings"
	"testing"
)

func TestSPECContrast(t *testing.T) {
	res, err := SPECContrast(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	// SPEC's optimal L2 line is large (the paper: ≥256 B).
	if res.OptimalL2Line < 128 {
		t.Errorf("SPEC optimal L2 line = %d B, want >= 128", res.OptimalL2Line)
	}
	// Associativity buys SPEC very little (the paper: 0.026).
	if res.AssocGain < 0 || res.AssocGain > 0.1 {
		t.Errorf("SPEC associativity gain = %.3f, want small and non-negative", res.AssocGain)
	}
	// The optimized SPEC total is tiny — "little motivation to consider the
	// other L1-L2 interface optimizations" (the paper: 0.083).
	if res.BestTotal > 0.2 {
		t.Errorf("SPEC optimized total = %.3f, want ≲ 0.2", res.BestTotal)
	}
	// SPEC's optimal L1 line is at least as large as IBS's (the paper:
	// double).
	if res.OptimalL1Line < res.IBSOptimalL1Line {
		t.Errorf("SPEC optimal L1 line (%d) below IBS (%d)", res.OptimalL1Line, res.IBSOptimalL1Line)
	}
	if !strings.Contains(res.Render(), "counterfactual") {
		t.Error("render missing title")
	}
}

func TestExtensionDualPort(t *testing.T) {
	res, err := ExtensionDualPort(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Dual-porting must help the slow link...
	if res.DualPort4 >= res.Blocking4 {
		t.Errorf("dual-ported (%.3f) not below blocking (%.3f) at 4 B/cyc", res.DualPort4, res.Blocking4)
	}
	// ...and recover a substantial part of what 4x bandwidth buys (the
	// Figure 6 aside: "similar performance improvements").
	gapBW := res.Blocking4 - res.Blocking16
	gapDP := res.Blocking4 - res.DualPort4
	if gapBW > 0 && gapDP < 0.4*gapBW {
		t.Errorf("dual-porting recovered only %.0f%% of the bandwidth gap", 100*gapDP/gapBW)
	}
	if !strings.Contains(res.Render(), "dual-ported") {
		t.Error("render missing rows")
	}
}

func TestAblationWriteBuffer(t *testing.T) {
	res, err := AblationWriteBuffer(Options{Instructions: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Deeper buffers monotonically reduce write stalls.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].CPIwrite > res.Rows[i-1].CPIwrite+1e-9 {
			t.Errorf("CPIwrite rose at depth %d: %.4f -> %.4f",
				res.Rows[i].Depth, res.Rows[i-1].CPIwrite, res.Rows[i].CPIwrite)
		}
	}
	// A 1-entry buffer must hurt; a 16-entry buffer should absorb nearly
	// everything.
	if res.Rows[0].CPIwrite <= res.Rows[4].CPIwrite {
		t.Error("depth sweep flat")
	}
	if !strings.Contains(res.Render(), "4 entries") {
		t.Error("render missing title")
	}
}
