package experiments

import (
	"fmt"

	"ibsim/internal/cache"
	"ibsim/internal/fetch"
	"ibsim/internal/memsys"
	"ibsim/internal/synth"
	"ibsim/internal/tlb"
	"ibsim/internal/trace"
)

// Extensions: the paper's explicitly-named future work ("more aggressive
// (non-sequential) prefetching schemes", multi-issue impact) and the
// software-based methods its related-work section surveys, evaluated on the
// same IBS workloads.

// ---------------------------------------------------- Victim cache

// VictimRow is one victim-cache depth's result.
type VictimRow struct {
	VictimLines int
	CPI         float64
	MPI         float64 // per 100 instructions (L1 misses, incl. victim hits)
}

// VictimResult compares victim caches (Jouppi's other small-fully-assoc
// structure) against the plain direct-mapped baseline and a 2-way L1 of the
// same capacity.
type VictimResult struct {
	Baseline float64 // plain 8-KB DM CPIinstr
	TwoWay   float64 // 8-KB 2-way CPIinstr (the cycle-time-infeasible rival)
	Rows     []VictimRow
}

// ExtensionVictim sweeps victim-cache sizes on the IBS suite behind the
// on-chip L2 link.
func ExtensionVictim(opt Options) (*VictimResult, error) {
	opt = opt.withDefaults()
	link := memsys.L1L2Link()
	res := &VictimResult{}
	var err error
	if res.Baseline, err = l1CPI(ibsProfiles(), BaseL1(), link, opt); err != nil {
		return nil, err
	}
	twoWay := BaseL1()
	twoWay.Assoc = 2
	if res.TwoWay, err = l1CPI(ibsProfiles(), twoWay, link, opt); err != nil {
		return nil, err
	}
	for _, lines := range []int{1, 2, 4, 8, 15} {
		cpi, mpi, err := suiteMeanEngineCPI(ibsProfiles(), opt, func() (fetch.Engine, error) {
			return fetch.NewVictim(BaseL1(), link, lines)
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, VictimRow{VictimLines: lines, CPI: cpi, MPI: 100 * mpi})
	}
	return res, nil
}

// Render prints the sweep.
func (r *VictimResult) Render() string {
	header := []string{"Configuration", "L1 CPIinstr"}
	rows := [][]string{{"8-KB DM (baseline)", f3(r.Baseline)}}
	for _, row := range r.Rows {
		rows = append(rows, []string{fmt.Sprintf("+ %d-line victim cache", row.VictimLines), f3(row.CPI)})
	}
	rows = append(rows, []string{"8-KB 2-way (cycle-time-infeasible)", f3(r.TwoWay)})
	return renderTable("Extension: victim caches vs associativity (IBS average)", header, rows)
}

// ---------------------------------------------------- Multi-way stream buffers

// MultiStreamRow is one (ways, depth) configuration.
type MultiStreamRow struct {
	Ways  int
	Depth int
	CPI   float64
}

// MultiStreamResult evaluates multi-way stream buffers (Jouppi;
// Palacharla & Kessler) — the non-sequential prefetching direction the
// paper's conclusion names as future work. IBS's cross-domain interleaving
// is exactly the workload property that kills a single stream buffer.
type MultiStreamResult struct {
	// Single is the Table 8 single-stream reference at the same total lines.
	Rows []MultiStreamRow
}

// ExtensionMultiStream sweeps ways × depth at 16 B/cycle (16-byte lines).
func ExtensionMultiStream(opt Options) (*MultiStreamResult, error) {
	opt = opt.withDefaults()
	link := memsys.L1L2Link()
	res := &MultiStreamResult{}
	for _, ways := range []int{1, 2, 4, 8} {
		for _, depth := range []int{2, 4, 6} {
			cpi, _, err := suiteMeanEngineCPI(ibsProfiles(), opt, func() (fetch.Engine, error) {
				return fetch.NewMultiStream(baseL1WithLine(16), link, ways, depth)
			})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, MultiStreamRow{Ways: ways, Depth: depth, CPI: cpi})
		}
	}
	return res, nil
}

// Render prints the ways × depth grid.
func (r *MultiStreamResult) Render() string {
	depths := []int{2, 4, 6}
	header := []string{"Stream ways \\ depth"}
	for _, d := range depths {
		header = append(header, fmt.Sprintf("%d lines", d))
	}
	byKey := map[[2]int]float64{}
	waySet := map[int]bool{}
	for _, row := range r.Rows {
		byKey[[2]int{row.Ways, row.Depth}] = row.CPI
		waySet[row.Ways] = true
	}
	var rows [][]string
	for w := 1; w <= 64; w *= 2 {
		if !waySet[w] {
			continue
		}
		row := []string{fmt.Sprintf("%d", w)}
		for _, d := range depths {
			row = append(row, f3(byKey[[2]int{w, d}]))
		}
		rows = append(rows, row)
	}
	return renderTable("Extension: multi-way stream buffers (IBS average L1 CPIinstr, 16 B/cycle)", header, rows)
}

// ---------------------------------------------------- Issue-width impact

// IssueWidthRow is the fetch-stall share at one issue width.
type IssueWidthRow struct {
	Width int
	// BaseCPI is the ideal CPI at this width (1/width).
	BaseCPI float64
	// TotalCPI is base + CPIinstr of the fully optimized system.
	TotalCPI float64
	// FetchShare is the fraction of execution time lost to I-fetch stalls.
	FetchShare float64
}

// IssueWidthResult quantifies the paper's closing sentence: "instruction-
// fetch overhead will be an important component of the execution time of
// future multi-issue processors that rely on small primary caches". It takes
// the fully optimized high-performance configuration's CPIinstr (~0.18) and
// shows its share of execution at 1-, 2- and 4-wide issue.
type IssueWidthResult struct {
	CPIinstr float64
	Rows     []IssueWidthRow
}

// ExtensionIssueWidth computes the final-system CPIinstr and its share.
func ExtensionIssueWidth(opt Options) (*IssueWidthResult, error) {
	opt = opt.withDefaults()
	// Fully optimized: pipelined 18-line stream buffer L1 + 64-KB 8-way L2
	// backed by the high-performance memory.
	l1, _, err := suiteMeanEngineCPI(ibsProfiles(), opt, func() (fetch.Engine, error) {
		return fetch.NewStream(baseL1WithLine(16), memsys.L1L2Link(), 18)
	})
	if err != nil {
		return nil, err
	}
	l2cfg := cache.Config{Size: 64 * 1024, LineSize: 64, Assoc: 8}
	l2, err := l2CPI(ibsProfiles(), l2cfg, memsys.HighPerformance().Memory, opt)
	if err != nil {
		return nil, err
	}
	res := &IssueWidthResult{CPIinstr: l1 + l2}
	for _, width := range []int{1, 2, 4} {
		base := 1.0 / float64(width)
		total := base + res.CPIinstr
		res.Rows = append(res.Rows, IssueWidthRow{
			Width:      width,
			BaseCPI:    base,
			TotalCPI:   total,
			FetchShare: res.CPIinstr / total,
		})
	}
	return res, nil
}

// Render prints the table.
func (r *IssueWidthResult) Render() string {
	header := []string{"Issue width", "Ideal CPI", "CPI with I-fetch stalls", "Fetch share of time"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d-issue", row.Width), f2(row.BaseCPI), f2(row.TotalCPI), pct(row.FetchShare),
		})
	}
	return renderTable(
		fmt.Sprintf("Extension: multi-issue impact of the CPIinstr floor (%.2f, fully optimized high-perf system)", r.CPIinstr),
		header, rows)
}

// ---------------------------------------------------- TLB sweep

// TLBRow is one TLB configuration's behavior.
type TLBRow struct {
	Entries int
	Assoc   int
	// MissesPer100 is TLB misses per 100 instructions (IBS/Mach average,
	// full reference stream).
	MissesPer100 float64
}

// TLBResult sweeps TLB reach the way the authors' companion work (Nagle et
// al. 1993, "Design Tradeoffs for Software-Managed TLBs", built on the same
// infrastructure) did: code bloat pressures the TLB exactly as it pressures
// the I-cache.
type TLBResult struct {
	Rows []TLBRow
}

// ExtensionTLB sweeps entries × associativity over the IBS/Mach suite.
func ExtensionTLB(opt Options) (*TLBResult, error) {
	opt = opt.withDefaults()
	res := &TLBResult{}
	profiles := ibsProfiles()
	entries := []int{16, 32, 64, 128, 256}
	assocs := []int{0, 4} // fully associative and 4-way
	acc := map[[2]int]float64{}
	for _, p := range profiles {
		g, err := synth.NewGenerator(p, opt.Seed)
		if err != nil {
			return nil, err
		}
		refs := make([]trace.Ref, 0, opt.Instructions+opt.Instructions/3)
		for g.Instructions() < opt.Instructions {
			r, _ := g.Next()
			refs = append(refs, r)
		}
		for _, e := range entries {
			for _, a := range assocs {
				t, err := tlb.New(tlb.Config{Entries: e, PageSize: 4096, Assoc: a})
				if err != nil {
					return nil, err
				}
				var instr int64
				for _, r := range refs {
					if r.Kind == trace.IFetch {
						instr++
						if r.Domain == trace.Kernel {
							continue // kseg0: unmapped kernel text
						}
					}
					t.Access(r.Addr, r.Domain)
				}
				st := t.Stats()
				acc[[2]int{e, a}] += 100 * float64(st.Misses) / float64(instr) / float64(len(profiles))
			}
		}
	}
	for _, e := range entries {
		for _, a := range assocs {
			res.Rows = append(res.Rows, TLBRow{Entries: e, Assoc: a, MissesPer100: acc[[2]int{e, a}]})
		}
	}
	return res, nil
}

// Render prints the sweep.
func (r *TLBResult) Render() string {
	header := []string{"Entries", "Fully-assoc misses/100", "4-way misses/100"}
	byKey := map[[2]int]float64{}
	entrySet := map[int]bool{}
	for _, row := range r.Rows {
		byKey[[2]int{row.Entries, row.Assoc}] = row.MissesPer100
		entrySet[row.Entries] = true
	}
	var rows [][]string
	for e := 8; e <= 1024; e *= 2 {
		if !entrySet[e] {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", e), f3(byKey[[2]int{e, 0}]), f3(byKey[[2]int{e, 4}]),
		})
	}
	return renderTable("Extension: TLB reach under IBS (misses per 100 instructions, 4-KB pages)", header, rows)
}

// ---------------------------------------------------- Procedure placement

// PlacementResult measures profile-guided procedure placement (Hwu & Chang;
// McFarling — the related-work software methods): the same workload with
// scattered (linker-order) vs popularity-ordered text layout.
type PlacementResult struct {
	Workload  string
	Scattered float64 // MPI per 100, 8-KB DM
	HotPacked float64
	// ScatteredAssoc is the scattered layout in a 2-way cache — placement
	// and associativity attack the same conflict misses.
	ScatteredAssoc float64
}

// ExtensionPlacement compares layouts on gcc (the workload compilers care
// about).
func ExtensionPlacement(opt Options) (*PlacementResult, error) {
	opt = opt.withDefaults()
	p, err := synth.Lookup("gcc")
	if err != nil {
		return nil, err
	}
	res := &PlacementResult{Workload: p.Name}

	mpi := func(prof synth.Profile, cfg cache.Config) (float64, error) {
		refs, err := synth.InstrTrace(prof, opt.Seed, opt.Instructions)
		if err != nil {
			return 0, err
		}
		c, err := cache.New(cfg)
		if err != nil {
			return 0, err
		}
		for _, r := range refs {
			c.Access(r.Addr)
		}
		st := c.Stats()
		return 100 * float64(st.Misses) / float64(st.Accesses), nil
	}

	if res.Scattered, err = mpi(p, BaseL1()); err != nil {
		return nil, err
	}
	hot := p
	for d := range hot.Domains {
		if hot.Domains[d].TimeShare > 0 {
			hot.Domains[d].HotLayout = true
		}
	}
	if res.HotPacked, err = mpi(hot, BaseL1()); err != nil {
		return nil, err
	}
	twoWay := BaseL1()
	twoWay.Assoc = 2
	if res.ScatteredAssoc, err = mpi(p, twoWay); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the comparison.
func (r *PlacementResult) Render() string {
	header := []string{"Configuration", "MPI (per 100)"}
	rows := [][]string{
		{"scattered layout, 8-KB DM", f2(r.Scattered)},
		{"profile-guided layout, 8-KB DM", f2(r.HotPacked)},
		{"scattered layout, 8-KB 2-way", f2(r.ScatteredAssoc)},
	}
	return renderTable(
		fmt.Sprintf("Extension: profile-guided procedure placement (%s)", r.Workload),
		header, rows)
}
