package experiments

import (
	"fmt"

	"ibsim/internal/cache"
	"ibsim/internal/cpi"
	"ibsim/internal/fetch"
	"ibsim/internal/memsys"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

// ---------------------------------------------------------------- Table 1

// Table1Row is one suite's memory-system performance on the DECstation 3100.
type Table1Row struct {
	Suite      string
	UserShare  float64
	OSShare    float64
	Components cpi.Components
}

// Table1Result reproduces "Memory System Performance of the SPEC
// Benchmarks".
type Table1Result struct {
	Rows []Table1Row
}

// Table1 simulates the four SPEC suite aggregates on the DECstation 3100
// model.
func Table1(opt Options) (*Table1Result, error) {
	opt = opt.withDefaults()
	rows, err := mapProfiles(synth.SPECSuites(), opt, func(p synth.Profile) (Table1Row, error) {
		return decstationRow(p, opt)
	})
	if err != nil {
		return nil, err
	}
	return &Table1Result{Rows: rows}, nil
}

// decstationRow runs one workload (with data references) through the
// DECstation 3100 system model.
func decstationRow(p synth.Profile, opt Options) (Table1Row, error) {
	g, err := synth.NewGenerator(p, opt.Seed)
	if err != nil {
		return Table1Row{}, err
	}
	s := cpi.NewSystem()
	for s.Instructions() < opt.Instructions {
		r, _ := g.Next()
		s.Process(r)
	}
	return Table1Row{
		Suite:      p.Name,
		UserShare:  s.UserShare(),
		OSShare:    s.OSShare(),
		Components: s.Components(),
	}, nil
}

// Render prints the table in the paper's column layout.
func (t *Table1Result) Render() string {
	header := []string{"Benchmark", "User", "OS", "Total Memory CPI", "I-cache", "D-cache", "TLB", "Write"}
	var rows [][]string
	for _, r := range t.Rows {
		c := r.Components
		rows = append(rows, []string{
			r.Suite, pct(r.UserShare), pct(r.OSShare),
			f3(c.Total()), f3(c.Instr), f3(c.Data), f3(c.TLB), f3(c.Write),
		})
	}
	return renderTable("Table 1: Memory System Performance of the SPEC Benchmarks (DECstation 3100 model)", header, rows)
}

// ---------------------------------------------------------------- Table 3

// Table3Row is one suite's memory performance on the DECstation 3100.
type Table3Row struct {
	Suite     string
	UserShare float64
	OSShare   float64
	Instr     float64
	Data      float64
	Write     float64
}

// Table3Result reproduces "Memory Performance of the IBS Workloads".
type Table3Result struct {
	Rows []Table3Row
}

// Table3 simulates IBS under both OS models and the SPEC92 suites on the
// DECstation 3100 model.
func Table3(opt Options) (*Table3Result, error) {
	opt = opt.withDefaults()
	res := &Table3Result{}
	suite := func(name string, profiles []synth.Profile) error {
		var row Table3Row
		row.Suite = name
		n := float64(len(profiles))
		perRows, err := mapProfiles(profiles, opt, func(p synth.Profile) (Table1Row, error) {
			return decstationRow(p, opt)
		})
		if err != nil {
			return err
		}
		for _, r := range perRows {
			row.UserShare += r.UserShare / n
			row.OSShare += r.OSShare / n
			row.Instr += r.Components.Instr / n
			row.Data += r.Components.Data / n
			row.Write += r.Components.Write / n
		}
		res.Rows = append(res.Rows, row)
		return nil
	}
	if err := suite("IBS (Mach 3.0)", synth.IBSMach()); err != nil {
		return nil, err
	}
	if err := suite("IBS (Ultrix 3.1)", synth.IBSUltrix()); err != nil {
		return nil, err
	}
	suites := synth.SPECSuites()
	if err := suite("SPECint92", []synth.Profile{suites[2]}); err != nil {
		return nil, err
	}
	if err := suite("SPECfp92", []synth.Profile{suites[3]}); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the table.
func (t *Table3Result) Render() string {
	header := []string{"Benchmark", "User", "OS", "I-cache", "D-cache", "Write"}
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Suite, pct(r.UserShare), pct(r.OSShare), f2(r.Instr), f2(r.Data), f2(r.Write),
		})
	}
	return renderTable("Table 3: Memory Performance of the IBS Workloads (DECstation 3100 model)", header, rows)
}

// ---------------------------------------------------------------- Table 4

// Table4Row is one workload's MPI and execution-time decomposition.
type Table4Row struct {
	OS       string
	Workload string
	// MPI is misses per 100 instructions in an 8-KB direct-mapped I-cache
	// with 32-byte lines.
	MPI float64
	// Component shares of execution time.
	User, Kernel, BSD, X float64
}

// Table4Result reproduces "Detailed I-cache Performance of the IBS
// Workloads".
type Table4Result struct {
	Rows []Table4Row
	// MachAvg, UltrixAvg, SPECAvg are the suite-average MPI values (per 100
	// instructions).
	MachAvg, UltrixAvg, SPECAvg float64
}

// Table4 simulates every IBS workload under Mach in the 8-KB baseline cache,
// plus the Ultrix and SPEC92 averages.
func Table4(opt Options) (*Table4Result, error) {
	opt = opt.withDefaults()
	res := &Table4Result{}
	cfg := BaseL1()
	for _, p := range synth.IBSMach() {
		var row Table4Row
		row.OS = "Mach 3.0"
		row.Workload = p.Name
		refs, err := synth.InstrTrace(p, opt.Seed, opt.Instructions)
		if err != nil {
			return nil, err
		}
		c := cache.MustNew(cfg)
		var counts trace.Counts
		for _, r := range refs {
			c.Access(r.Addr)
			counts.Observe(r)
		}
		st := c.Stats()
		row.MPI = 100 * float64(st.Misses) / float64(st.Accesses)
		row.User = counts.DomainFraction(trace.User)
		row.Kernel = counts.DomainFraction(trace.Kernel)
		row.BSD = counts.DomainFraction(trace.BSDServer)
		row.X = counts.DomainFraction(trace.XServer)
		res.Rows = append(res.Rows, row)
		res.MachAvg += row.MPI / 8
	}
	ultrix, err := suiteMeanMPI(synth.IBSUltrix(), cfg, opt)
	if err != nil {
		return nil, err
	}
	res.UltrixAvg = 100 * ultrix
	spec, err := suiteMeanMPI(specProfiles(), cfg, opt)
	if err != nil {
		return nil, err
	}
	res.SPECAvg = 100 * spec
	return res, nil
}

// Render prints the table.
func (t *Table4Result) Render() string {
	header := []string{"OS", "Application", "MPI (per 100)", "User", "Kernel", "BSD", "X"}
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.OS, r.Workload, f2(r.MPI), pct(r.User), pct(r.Kernel), pct(r.BSD), pct(r.X),
		})
	}
	rows = append(rows,
		[]string{"Mach 3.0", "Average", f2(t.MachAvg), "", "", "", ""},
		[]string{"Ultrix 3.1", "Average", f2(t.UltrixAvg), "", "", "", ""},
		[]string{"Ultrix 4.1", "SPEC92 Average", f2(t.SPECAvg), "", "", "", ""},
	)
	return renderTable("Table 4: Detailed I-cache Performance of the IBS Workloads (8-KB DM, 32-B line)", header, rows)
}

// ---------------------------------------------------------------- Table 5

// Table5Result reproduces "CPIinstr for Base System Configurations".
type Table5Result struct {
	// CPIinstr[baseline][suite]: baselines {economy, high-performance},
	// suites {SPEC, IBS}.
	EconomySPEC, EconomyIBS   float64
	HighPerfSPEC, HighPerfIBS float64
}

// Table5 computes the baseline CPIinstr values: an 8-KB direct-mapped L1
// backed directly by each baseline memory system. Each suite replays once
// through a two-engine bank (economy, high-performance); the two engines
// share the L1 geometry, so the fan-out driver simulates one and derives
// the other analytically.
func Table5(opt Options) (*Table5Result, error) {
	opt = opt.withDefaults()
	res := &Table5Result{}
	cfg := BaseL1()
	mkBank := func() ([]fetch.Engine, error) {
		eco, err := fetch.NewBlocking(cfg, memsys.Economy().Memory, 0)
		if err != nil {
			return nil, err
		}
		hp, err := fetch.NewBlocking(cfg, memsys.HighPerformance().Memory, 0)
		if err != nil {
			return nil, err
		}
		return []fetch.Engine{eco, hp}, nil
	}
	for _, suite := range []struct {
		profiles []synth.Profile
		eco, hp  *float64
	}{
		{specProfiles(), &res.EconomySPEC, &res.HighPerfSPEC},
		{ibsProfiles(), &res.EconomyIBS, &res.HighPerfIBS},
	} {
		per, err := mapBanks(suite.profiles, opt, mkBank)
		if err != nil {
			return nil, err
		}
		n := float64(len(per))
		for _, bank := range per {
			*suite.eco += bank[0].CPIinstr() / n
			*suite.hp += bank[1].CPIinstr() / n
		}
	}
	return res, nil
}

// Render prints the table.
func (t *Table5Result) Render() string {
	header := []string{"Configuration Parameters", "Economy", "High Performance"}
	rows := [][]string{
		{"Next Level in Hierarchy", "Main Memory", "Ideal Off-chip Cache"},
		{"Latency to First Word (Cycles)", "30", "12"},
		{"Bandwidth (Bytes/Cycle)", "4", "8"},
		{"CPIinstr (SPEC)", f2(t.EconomySPEC), f2(t.HighPerfSPEC)},
		{"CPIinstr (IBS)", f2(t.EconomyIBS), f2(t.HighPerfIBS)},
	}
	return renderTable("Table 5: CPIinstr for Base System Configurations", header, rows)
}

// ---------------------------------------------------------------- Table 6

// prefetchGrid holds L1 CPIinstr for line sizes × prefetch depths.
type prefetchGrid struct {
	LineSizes []int
	Depths    []int
	// CPI[d][l] is the value for Depths[d] × LineSizes[l].
	CPI [][]float64
}

// Table6Result reproduces "Prefetching": sequential prefetch-on-miss over an
// 8-KB direct-mapped L1 at 16 bytes/cycle.
type Table6Result struct {
	Grid prefetchGrid
}

// table6Cells marks the cells the paper populates; others print "—"
// ("not reasonable, or an increase in CPIinstr").
var table6Cells = map[[2]int]bool{
	{0, 16}: true, {0, 32}: true, {0, 64}: true,
	{1, 16}: true, {1, 32}: true,
	{2, 16}: true,
	{3, 16}: true,
}

// Table6 runs the prefetch grid with the blocking (stall-until-all-returned)
// engine.
func Table6(opt Options) (*Table6Result, error) {
	opt = opt.withDefaults()
	grid, err := runGrid(opt, []int{16, 32, 64}, []int{0, 1, 2, 3},
		func(lineSize, depth int) (fetch.Engine, error) {
			return fetch.NewBlocking(baseL1WithLine(lineSize), memsys.L1L2Link(), depth)
		})
	if err != nil {
		return nil, err
	}
	return &Table6Result{Grid: grid}, nil
}

// runGrid evaluates an engine factory across a line-size × depth grid: one
// replay per workload through a bank holding every grid cell's engine, in
// (depth, line) order.
func runGrid(opt Options, lineSizes, depths []int, mk func(lineSize, depth int) (fetch.Engine, error)) (prefetchGrid, error) {
	grid := prefetchGrid{LineSizes: lineSizes, Depths: depths}
	grid.CPI = make([][]float64, len(depths))
	for i := range grid.CPI {
		grid.CPI[i] = make([]float64, len(lineSizes))
	}
	profiles := ibsProfiles()
	per, err := mapBanks(profiles, opt, func() ([]fetch.Engine, error) {
		engines := make([]fetch.Engine, 0, len(depths)*len(lineSizes))
		for _, d := range depths {
			for _, l := range lineSizes {
				e, err := mk(l, d)
				if err != nil {
					return nil, err
				}
				engines = append(engines, e)
			}
		}
		return engines, nil
	})
	if err != nil {
		return grid, err
	}
	for _, bank := range per {
		k := 0
		for di := range depths {
			for li := range lineSizes {
				grid.CPI[di][li] += bank[k].CPIinstr() / float64(len(profiles))
				k++
			}
		}
	}
	return grid, nil
}

// render prints a prefetch grid with the paper's "—" cells.
func (g prefetchGrid) render(title string, populated map[[2]int]bool) string {
	header := []string{"Lines Prefetched"}
	for _, l := range g.LineSizes {
		header = append(header, fmt.Sprintf("%dB line", l))
	}
	var rows [][]string
	for di, d := range g.Depths {
		row := []string{fmt.Sprintf("%d", d)}
		for li, l := range g.LineSizes {
			if populated != nil && !populated[[2]int{d, l}] {
				row = append(row, "—")
				continue
			}
			row = append(row, f3(g.CPI[di][li]))
		}
		rows = append(rows, row)
	}
	return renderTable(title, header, rows)
}

// Render prints the table.
func (t *Table6Result) Render() string {
	return t.Grid.render("Table 6: Prefetching (L1 CPIinstr, 8-KB DM, 16 B/cycle)", table6Cells)
}

// ---------------------------------------------------------------- Table 7

// Table7Result reproduces "Prefetching + Bypassing".
type Table7Result struct {
	NoBypass prefetchGrid
	Bypass   prefetchGrid
}

// table7BypassCells marks the populated "With Bypass Buffers" cells.
var table7BypassCells = map[[2]int]bool{
	{0, 32}: true, {0, 64}: true,
	{1, 16}: true, {1, 32}: true,
	{2, 16}: true,
	{3, 16}: true,
}

// Table7 runs the prefetch grid with and without bypass buffers.
func Table7(opt Options) (*Table7Result, error) {
	opt = opt.withDefaults()
	no, err := runGrid(opt, []int{16, 32, 64}, []int{0, 1, 2, 3},
		func(lineSize, depth int) (fetch.Engine, error) {
			return fetch.NewBlocking(baseL1WithLine(lineSize), memsys.L1L2Link(), depth)
		})
	if err != nil {
		return nil, err
	}
	by, err := runGrid(opt, []int{16, 32, 64}, []int{0, 1, 2, 3},
		func(lineSize, depth int) (fetch.Engine, error) {
			return fetch.NewBypass(baseL1WithLine(lineSize), memsys.L1L2Link(), depth)
		})
	if err != nil {
		return nil, err
	}
	return &Table7Result{NoBypass: no, Bypass: by}, nil
}

// Render prints both halves of the table.
func (t *Table7Result) Render() string {
	return t.NoBypass.render("Table 7a: No Bypass Buffers (L1 CPIinstr)", table6Cells) +
		"\n" +
		t.Bypass.render("Table 7b: With Bypass Buffers (L1 CPIinstr)", table7BypassCells)
}

// ---------------------------------------------------------------- Table 8

// Table8Row is one stream-buffer depth's CPIinstr at both bandwidths.
type Table8Row struct {
	Lines int
	CPI16 float64
	CPI32 float64
}

// Table8Result reproduces "Pipelined System with a Stream Buffer".
type Table8Result struct {
	Rows []Table8Row
}

// Table8 runs the pipelined stream-buffer engine; the L1 line size equals
// the L1–L2 bandwidth (16 or 32 bytes), letting the memory system accept a
// request every cycle.
func Table8(opt Options) (*Table8Result, error) {
	opt = opt.withDefaults()
	depths := []int{0, 1, 3, 6, 12, 18}
	res := &Table8Result{Rows: make([]Table8Row, len(depths))}
	for i, d := range depths {
		res.Rows[i].Lines = d
	}
	profiles := ibsProfiles()
	per, err := mapBanks(profiles, opt, func() ([]fetch.Engine, error) {
		engines := make([]fetch.Engine, 0, 2*len(depths))
		for _, d := range depths {
			e16, err := fetch.NewStream(baseL1WithLine(16), memsys.Transfer{Latency: 6, BytesPerCycle: 16}, d)
			if err != nil {
				return nil, err
			}
			e32, err := fetch.NewStream(baseL1WithLine(32), memsys.Transfer{Latency: 6, BytesPerCycle: 32}, d)
			if err != nil {
				return nil, err
			}
			engines = append(engines, e16, e32)
		}
		return engines, nil
	})
	if err != nil {
		return nil, err
	}
	for _, bank := range per {
		for i := range depths {
			res.Rows[i].CPI16 += bank[2*i].CPIinstr() / float64(len(profiles))
			res.Rows[i].CPI32 += bank[2*i+1].CPIinstr() / float64(len(profiles))
		}
	}
	return res, nil
}

// Render prints the table.
func (t *Table8Result) Render() string {
	header := []string{"Lines in Stream Buffer", "16 B/cycle CPIinstr", "32 B/cycle CPIinstr"}
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{fmt.Sprintf("%d", r.Lines), f3(r.CPI16), f3(r.CPI32)})
	}
	return renderTable("Table 8: Pipelined System with a Stream Buffer", header, rows)
}
