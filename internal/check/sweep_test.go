package check

import "testing"

func TestSweepVsPerConfig(t *testing.T) {
	opt := testOpt(t)
	if testing.Short() {
		opt.Instructions = 20_000
	}
	rs, err := SweepVsPerConfig(opt)
	requireAllPass(t, rs, err)
}

// TestSweepVsPerConfigSeeds re-runs the randomized miss-matrix property under
// shifted generation seeds, so the bit-identity claim is not an artifact of
// the calibrated seed set.
func TestSweepVsPerConfigSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is long")
	}
	for _, seed := range []uint64{1, 42} {
		opt := testOpt(t)
		opt.Instructions = 30_000
		opt.Seed = seed
		rs, err := SweepVsPerConfig(opt)
		requireAllPass(t, rs, err)
	}
}
