package check

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"ibsim/internal/cache"
	"ibsim/internal/sampling"
	"ibsim/internal/sweep"
	"ibsim/internal/synth"
)

// Sampling verification: the sampled execution modes promise calibrated
// uncertainty — "the exact answer lies inside the stated 95% interval" — and
// that promise is checkable, so check it. SamplingBounds runs sampled and
// exact sweeps side by side across the whole suite and scores the intervals;
// SamplingProperties pins the two statistical facts the estimators lean on
// (warm sampling is unbiased, cold-start bias shrinks with window length).

// samplingCells is the cache pair the bounds check scores intervals on: the
// paper's 8KB and 32KB direct-mapped points at the base 32-byte line.
func samplingCells() []sweep.Cell {
	return []sweep.Cell{{Sets: 256, Assoc: 1}, {Sets: 1024, Assoc: 1}}
}

const (
	// samplingSetMod is the bounds check's set-sampling modulus: 1/16 of the
	// sets are simulated.
	samplingSetMod   = 16
	samplingSetMatch = 3
	// samplingWindowDiv sets the time-sampling window to Instructions/256,
	// giving 16 measurement windows at 1/16 coverage (Period = 16·Window).
	samplingWindowDiv = 256
	samplingPeriodMul = 16
	// samplingBoundsAllowance is how many of the per-mode interval scores may
	// miss. At a nominal 95% rate over 16 points the expected miss count is
	// 0.8 and P(X > 3) < 1%; more than 3 misses means the intervals are
	// mis-calibrated, not unlucky.
	samplingBoundsAllowance = 3
)

// SamplingBounds runs sampled sweeps (set sampling at 1/16, warm time
// sampling at 1/16 coverage) against the exact sweep on every workload and
// both cache sizes, and fails a mode whose 95% intervals miss the exact MPI
// more often than the nominal rate allows.
func SamplingBounds(opt Options) ([]Result, error) {
	opt = opt.withDefaults()
	start := time.Now()
	cells := samplingCells()
	window := opt.Instructions / samplingWindowDiv
	if window < 64 {
		window = 64
	}
	type modeScore struct {
		name    string
		hits    int
		points  int
		sumRel  float64
		nRel    int
		worst   string
		worstEr float64
	}
	scores := []*modeScore{
		{name: "sampling/bounds-set"},
		{name: "sampling/bounds-time-warm"},
	}
	for _, p := range opt.Workloads {
		refs, runs, release, err := synth.DefaultStore.InstrRuns(context.Background(), p, opt.Seed, opt.Instructions)
		if err != nil {
			return nil, fmt.Errorf("check: sampling bounds: %s: %w", p.Name, err)
		}
		exact, err := sweep.Pass{LineSize: 32, Cells: cells}.Run(refs)
		if err != nil {
			release()
			return nil, fmt.Errorf("check: sampling bounds: exact sweep %s: %w", p.Name, err)
		}
		sampled := make([]*sweep.SampledMatrix, 2)
		sampled[0], err = sweep.SampledPass{
			LineSize: 32, Cells: cells, SetMod: samplingSetMod, SetMatch: samplingSetMatch,
		}.Run(runs)
		if err == nil {
			sampled[1], err = sweep.SampledPass{
				LineSize: 32, Cells: cells, Window: window, Period: samplingPeriodMul * window, Warm: true,
			}.Run(runs)
		}
		release()
		if err != nil {
			return nil, fmt.Errorf("check: sampling bounds: sampled sweep %s: %w", p.Name, err)
		}
		for mi, sm := range sampled {
			sc := scores[mi]
			for ci := range cells {
				exactMPI := float64(exact.Misses[ci]) / float64(exact.Accesses)
				est := sm.Estimates[ci]
				sc.points++
				if est.Contains(exactMPI) {
					sc.hits++
				}
				if exactMPI > 0 {
					rel := math.Abs(est.MPI-exactMPI) / exactMPI
					sc.sumRel += rel
					sc.nRel++
					if rel > sc.worstEr {
						sc.worstEr = rel
						sc.worst = fmt.Sprintf("%s/%dKB", p.Name, cells[ci].Size(32)/1024)
					}
				}
			}
		}
	}
	// The two modes share one set of exact sweeps, so the wall-clock is
	// split evenly between their Results.
	perMode := time.Since(start).Seconds() / float64(len(scores))
	var out []Result
	for _, sc := range scores {
		meanRel := 0.0
		if sc.nRel > 0 {
			meanRel = sc.sumRel / float64(sc.nRel)
		}
		misses := sc.points - sc.hits
		detail := fmt.Sprintf("exact MPI inside CI95 at %d/%d points (allowance %d), mean |rel err| %.2f%%, worst %.2f%% (%s)",
			sc.hits, sc.points, samplingBoundsAllowance, 100*meanRel, 100*sc.worstEr, sc.worst)
		r := pass(sc.name, "%s", detail)
		if misses > samplingBoundsAllowance {
			r = fail(sc.name, "%s", detail)
		}
		r.Seconds = perMode
		out = append(out, r)
	}
	return out, nil
}

// SamplingProperties pins the statistical behavior of the warm/cold sampling
// regimes on the reference single-cache path (internal/sampling.Run):
//
//   - Warm unbiasedness: as coverage rises toward 1 the estimate converges to
//     the exact miss ratio, reaching it exactly at full coverage.
//   - Cold-start bias: cold sampling overestimates, and the bias shrinks as
//     the window grows at fixed coverage (fewer cold starts per measured
//     instruction).
func SamplingProperties(opt Options) ([]Result, error) {
	opt = opt.withDefaults()
	cfg := cache.Config{Size: 8192, LineSize: 32, Assoc: 1}
	workloads := opt.Workloads
	if len(workloads) > 3 {
		workloads = workloads[:3]
	}
	baseWindow := opt.Instructions / samplingWindowDiv
	if baseWindow < 64 {
		baseWindow = 64
	}

	// Warm convergence ladder: 1/16 -> 1/4 -> 1 coverage.
	warmStart := time.Now()
	ladder := []int64{16, 4, 1}
	meanAbs := make([]float64, len(ladder))
	for _, p := range workloads {
		refs, release, err := synth.DefaultStore.Instr(p, opt.Seed, opt.Instructions)
		if err != nil {
			return nil, fmt.Errorf("check: sampling properties: %s: %w", p.Name, err)
		}
		for li, mul := range ladder {
			plan := sampling.Plan{Window: baseWindow, Period: mul * baseWindow, Mode: sampling.Warm}
			_, _, relErr, err := sampling.Error(cfg, refs, plan)
			if err != nil {
				if errors.Is(err, sampling.ErrZeroBaseline) {
					continue
				}
				release()
				return nil, fmt.Errorf("check: sampling properties: %s: %w", p.Name, err)
			}
			meanAbs[li] += math.Abs(relErr) / float64(len(workloads))
		}
		release()
	}
	var out []Result
	const convergenceSlack = 0.02
	// The absolute accuracy pin only holds at the pinned scale and above —
	// at toy scales a 1/16-coverage sample is a few thousand instructions
	// and its variance swamps any fixed cap. Convergence and full-coverage
	// exactness are the scale-free properties.
	atScale := opt.Instructions >= PinnedInstructions
	switch {
	case meanAbs[len(ladder)-1] != 0:
		out = append(out, fail("sampling/warm-unbiased",
			"full-coverage warm sampling should be exact, mean |rel err| %.4f", meanAbs[len(ladder)-1]))
	case meanAbs[1] > meanAbs[0]+convergenceSlack:
		out = append(out, fail("sampling/warm-unbiased",
			"error grew with coverage: %.2f%% at 1/16 -> %.2f%% at 1/4", 100*meanAbs[0], 100*meanAbs[1]))
	case atScale && meanAbs[0] > 0.15:
		out = append(out, fail("sampling/warm-unbiased",
			"warm 1/16-coverage mean |rel err| %.2f%% exceeds 15%%", 100*meanAbs[0]))
	default:
		out = append(out, pass("sampling/warm-unbiased",
			"mean |rel err| %.2f%% (1/16) -> %.2f%% (1/4) -> %.4f%% (full)",
			100*meanAbs[0], 100*meanAbs[1], 100*meanAbs[2]))
	}
	out[len(out)-1].Seconds = time.Since(warmStart).Seconds()

	// Cold-start bias: coverage fixed at 1/4, window swept x16.
	coldStart := time.Now()
	windows := []int64{baseWindow, 4 * baseWindow, 16 * baseWindow}
	bias := make([]float64, len(windows))
	for _, p := range workloads {
		refs, release, err := synth.DefaultStore.Instr(p, opt.Seed, opt.Instructions)
		if err != nil {
			return nil, fmt.Errorf("check: sampling properties: %s: %w", p.Name, err)
		}
		for wi, w := range windows {
			plan := sampling.Plan{Window: w, Period: 4 * w, Mode: sampling.Cold}
			_, _, relErr, err := sampling.Error(cfg, refs, plan)
			if err != nil {
				if errors.Is(err, sampling.ErrZeroBaseline) {
					continue
				}
				release()
				return nil, fmt.Errorf("check: sampling properties: %s: %w", p.Name, err)
			}
			bias[wi] += relErr / float64(len(workloads))
		}
		release()
	}
	const biasSlack = 0.02
	switch {
	case bias[0] < -biasSlack:
		out = append(out, fail("sampling/cold-bias",
			"cold sampling should overestimate, mean bias %.2f%% at window %d", 100*bias[0], windows[0]))
	case bias[len(windows)-1] > bias[0]+biasSlack:
		out = append(out, fail("sampling/cold-bias",
			"cold bias grew with window: %.2f%% at %d -> %.2f%% at %d",
			100*bias[0], windows[0], 100*bias[len(windows)-1], windows[len(windows)-1]))
	default:
		out = append(out, pass("sampling/cold-bias",
			"mean bias %.2f%% (w=%d) -> %.2f%% (w=%d) -> %.2f%% (w=%d)",
			100*bias[0], windows[0], 100*bias[1], windows[1], 100*bias[2], windows[2]))
	}
	out[len(out)-1].Seconds = time.Since(coldStart).Seconds()
	return out, nil
}
