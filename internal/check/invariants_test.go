package check

import (
	"strings"
	"testing"

	"ibsim/internal/cache"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

// testOpt keeps in-test verification fast; the CLI runs the pinned scale.
func testOpt(t *testing.T) Options {
	t.Helper()
	opt := Options{Instructions: 50_000}
	if testing.Short() {
		opt.Workloads = synth.IBSMach()[:3]
	}
	return opt
}

// requireAllPass fails the test on any failed result.
func requireAllPass(t *testing.T, rs []Result, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	if len(rs) == 0 {
		t.Fatal("no results returned")
	}
	for _, r := range rs {
		if !r.Passed {
			t.Errorf("%s failed: %s", r.Name, r.Detail)
		} else {
			t.Logf("%s: %s", r.Name, r.Detail)
		}
	}
}

func TestInclusion(t *testing.T) {
	rs, err := Inclusion(testOpt(t))
	requireAllPass(t, rs, err)
}

func TestMonotonicity(t *testing.T) {
	rs, err := Monotonicity(testOpt(t))
	requireAllPass(t, rs, err)
}

func TestEngineBounds(t *testing.T) {
	rs, err := EngineBounds(testOpt(t))
	requireAllPass(t, rs, err)
}

func TestStreamingEquality(t *testing.T) {
	rs, err := StreamingEquality(testOpt(t))
	requireAllPass(t, rs, err)
}

// TestInclusionHoldsUltrix sweeps the other OS model too: the invariant is a
// property of the cache model, not of one workload set.
func TestInclusionHoldsUltrix(t *testing.T) {
	if testing.Short() {
		t.Skip("Mach suite covers the model in short mode")
	}
	opt := testOpt(t)
	opt.Workloads = synth.IBSUltrix()[:4]
	rs, err := Inclusion(opt)
	requireAllPass(t, rs, err)
}

// TestInclusionDetectsFIFOAnomaly proves the checker has teeth: FIFO
// replacement is not a stack algorithm, and Bélády's classic sequence makes
// a 4-line FIFO cache miss where the 3-line one hits. runInclusion must
// report that violation.
func TestInclusionDetectsFIFOAnomaly(t *testing.T) {
	pages := []uint64{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}
	refs := make([]trace.Ref, len(pages))
	for i, p := range pages {
		refs[i] = trace.Ref{Addr: p * 32, Kind: trace.IFetch}
	}
	chain := []cache.Config{
		{Size: 3 * 32, LineSize: 32, Replacement: cache.FIFO},
		{Size: 4 * 32, LineSize: 32, Replacement: cache.FIFO},
	}
	res, ok, err := runInclusion("test/fifo-anomaly", "belady", refs, chain)
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	if ok {
		t.Fatal("runInclusion reported no violation on Bélády's FIFO anomaly sequence")
	}
	if !strings.Contains(res.Detail, "hit but") {
		t.Fatalf("violation detail malformed: %q", res.Detail)
	}
	t.Logf("detected as expected: %s", res.Detail)
}

// TestLRUInclusionOnBeladySequence is the converse control: the same
// sequence through LRU caches must satisfy inclusion (LRU is a stack
// algorithm).
func TestLRUInclusionOnBeladySequence(t *testing.T) {
	pages := []uint64{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}
	refs := make([]trace.Ref, len(pages))
	for i, p := range pages {
		refs[i] = trace.Ref{Addr: p * 32, Kind: trace.IFetch}
	}
	chain := []cache.Config{
		{Size: 3 * 32, LineSize: 32},
		{Size: 4 * 32, LineSize: 32},
	}
	res, ok, err := runInclusion("test/lru-belady", "belady", refs, chain)
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	if !ok {
		t.Fatalf("LRU violated inclusion on Bélády's sequence: %s", res.Detail)
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("component tests cover RunAll's pieces in short mode")
	}
	opt := testOpt(t)
	rs, err := RunAll(opt)
	requireAllPass(t, rs, err)
	if len(rs) != 22 {
		t.Errorf("RunAll returned %d results, want 22", len(rs))
	}
}
