package check

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"ibsim/internal/fetch"
	"ibsim/internal/replay"
	"ibsim/internal/trace"
)

// chaosColumnarBlockBytes keeps the chaos fixture multi-block at the 20K-ref
// scale so a "middle block" exists to damage (the delta encoding packs
// roughly 0.4 bytes per instruction, so 2K blocks would leave only a
// handful).
const chaosColumnarBlockBytes = 512

// chaosColumnarSalvage damages a columnar trace inside a middle block — a
// payload bit-flip, then a mid-frame truncation — and asserts the salvage
// contract: the intact footer index localizes the flip to exactly that
// block (DroppedRefs equals its indexed instruction count, every other
// block decodes unchanged), truncation degrades to a clean-prefix rebuild,
// and a fan-out replay over the salvaged trace still satisfies the fetch
// engines' bound invariants — degraded data, never broken physics.
func chaosColumnarSalvage(refs []trace.Ref) Result {
	const name = "chaos/columnar-salvage"
	runs := trace.Compact(refs)
	var buf bytes.Buffer
	if _, err := trace.EncodeColumnarSize(&buf, runs, chaosColumnarBlockBytes); err != nil {
		return fail(name, "encoding columnar fixture: %v", err)
	}
	img := buf.Bytes()
	clean, err := trace.NewColumnarBytes(img)
	if err != nil {
		return fail(name, "opening clean fixture: %v", err)
	}
	nb := clean.NumBlocks()
	if nb < 5 {
		return fail(name, "fixture spans only %d blocks; no middle block to damage", nb)
	}
	mid := nb / 2
	m := clean.BlockMeta(mid)

	// Flip one payload bit in the middle block (an 8-byte frame — length +
	// CRC — precedes each payload).
	flipped := append([]byte(nil), img...)
	flipped[m.Offset+8+int64(m.PayloadLen)/2] ^= 0x10
	bad, err := trace.NewColumnarBytes(flipped)
	if err != nil {
		return fail(name, "flipped image no longer opens (index untouched): %v", err)
	}
	if _, err := bad.BlockRuns(mid, nil); !errors.Is(err, trace.ErrCorrupt) {
		return fail(name, "reading the flipped block = %v, want ErrCorrupt", err)
	}
	sf, dmg, err := trace.SalvageColumnarBytes(flipped)
	if err != nil {
		return fail(name, "salvage of flipped image failed: %v", err)
	}
	if !dmg.Damaged() || dmg.IndexRebuilt {
		return fail(name, "flip damage misreported: %+v", dmg)
	}
	if dmg.DroppedBlocks != 1 || dmg.DroppedRefs != m.Refs {
		return fail(name, "flip dropped %d blocks / %d refs, want exactly block %d's 1 / %d",
			dmg.DroppedBlocks, dmg.DroppedRefs, mid, m.Refs)
	}
	if sf.Refs() != clean.Refs()-m.Refs || sf.NumBlocks() != nb-1 {
		return fail(name, "salvaged file holds %d refs in %d blocks, want %d in %d",
			sf.Refs(), sf.NumBlocks(), clean.Refs()-m.Refs, nb-1)
	}
	// Every surviving block must decode to exactly the clean file's runs.
	var cleanRuns, salvRuns []trace.Run
	si := 0
	for b := 0; b < nb; b++ {
		if b == mid {
			continue
		}
		if cleanRuns, err = clean.BlockRuns(b, cleanRuns); err != nil {
			return fail(name, "clean block %d: %v", b, err)
		}
		if salvRuns, err = sf.BlockRuns(si, salvRuns); err != nil {
			return fail(name, "salvaged block %d: %v", si, err)
		}
		if d := runsDiffer(cleanRuns, salvRuns); d != "" {
			return fail(name, "salvaged block %d (clean %d): %s", si, b, d)
		}
		si++
	}
	if r := chaosReplayBounds(sf); r != "" {
		return fail(name, "replay over flip-salvaged trace: %s", r)
	}

	// Truncate mid-frame inside the next-to-last block: trailer and index are
	// gone, so salvage must rebuild by forward scan and keep the clean prefix.
	cutBlock := nb - 2
	cut := clean.BlockMeta(cutBlock).Offset + 11
	trunc := append([]byte(nil), img[:cut]...)
	if _, err := trace.NewColumnarBytes(trunc); !typedDecodeErr(err) {
		return fail(name, "truncated image opened without a typed error: %v", err)
	}
	tf, tdmg, err := trace.SalvageColumnarBytes(trunc)
	if err != nil {
		return fail(name, "salvage of truncated image failed: %v", err)
	}
	if !tdmg.IndexRebuilt || !tdmg.Damaged() {
		return fail(name, "truncation damage misreported: %+v", tdmg)
	}
	if tf.NumBlocks() != cutBlock {
		return fail(name, "prefix salvage kept %d blocks, want the %d before the cut", tf.NumBlocks(), cutBlock)
	}
	var wantPrefix int64
	for b := 0; b < cutBlock; b++ {
		wantPrefix += clean.BlockMeta(b).Refs
	}
	if tf.Refs() != wantPrefix {
		return fail(name, "prefix salvage holds %d refs, want %d", tf.Refs(), wantPrefix)
	}
	for b := 0; b < cutBlock; b++ {
		if cleanRuns, err = clean.BlockRuns(b, cleanRuns); err != nil {
			return fail(name, "clean block %d: %v", b, err)
		}
		if salvRuns, err = tf.BlockRuns(b, salvRuns); err != nil {
			return fail(name, "prefix block %d: %v", b, err)
		}
		if d := runsDiffer(cleanRuns, salvRuns); d != "" {
			return fail(name, "prefix block %d: %s", b, d)
		}
	}
	if r := chaosReplayBounds(tf); r != "" {
		return fail(name, "replay over truncation-salvaged trace: %s", r)
	}
	return pass(name, "flip in block %d/%d dropped exactly %d refs, truncation kept a %d-block prefix, salvaged replays obey engine bounds",
		mid, nb, m.Refs, cutBlock)
}

// chaosReplayBounds fans a salvaged block trace through a small engine bank
// and checks the engine-bound invariants still hold: no engine beats the
// traffic-free stall floor, and bypass-on-miss never loses to the blocking
// engine it refines. Returns "" on success.
func chaosReplayBounds(bs trace.BlockSource) string {
	link := checkLink()
	cfg := baseL1()
	blocking, err := fetch.NewBlocking(cfg, link, 0)
	if err != nil {
		return err.Error()
	}
	bypass, err := fetch.NewBypass(cfg, link, 0)
	if err != nil {
		return err.Error()
	}
	stream, err := fetch.NewStream(cfg, link, 6)
	if err != nil {
		return err.Error()
	}
	engines := []fetch.Engine{blocking, bypass, stream}
	results, err := replay.Blocks(context.Background(), bs, engines)
	if err != nil {
		return err.Error()
	}
	for i, res := range results {
		if res.Instructions == 0 {
			return fmt.Sprintf("engine %d replayed nothing", i)
		}
		if min := res.Misses * int64(link.Latency); res.StallCycles < min {
			return fmt.Sprintf("engine %d: %d stall cycles beat the traffic-free bound %d", i, res.StallCycles, min)
		}
	}
	by, bl := results[1], results[0]
	if by.Misses != bl.Misses {
		return fmt.Sprintf("bypass misses %d != blocking misses %d", by.Misses, bl.Misses)
	}
	if by.StallCycles > bl.StallCycles {
		return fmt.Sprintf("bypass stalled %d > blocking's %d", by.StallCycles, bl.StallCycles)
	}
	return ""
}

// runsDiffer compares two run slices, "" when identical.
func runsDiffer(a, b []trace.Run) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%d runs, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("run %d: %+v vs %+v", i, b[i], a[i])
		}
	}
	return ""
}
