package check

import (
	"context"
	"fmt"
	"math"
	"time"

	"ibsim/internal/sweep"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

// SamplingBench records the sampled-sweep benchmark: the full 1KB-64KB
// capacity x associativity grid swept exactly and at 1/16 set sampling over
// the whole suite, with the speedup, accuracy, and interval-calibration
// verdicts. cmd/ibscheck embeds it in BENCH_ibsim.json as the "sampling"
// stage — this is where the ">=10x at 1/16 coverage" promise of the sampled
// mode is pinned against regression.
type SamplingBench struct {
	// Instructions is the per-workload scale both paths ran at.
	Instructions int64 `json:"instructions"`
	// ExactSeconds and SampledSeconds are the wall-clock times of the exact
	// and set-sampled sweeps (trace generation and compaction excluded — the
	// store is warmed first). Each is the minimum over samplingBenchIters
	// interleaved timings.
	ExactSeconds   float64 `json:"exact_seconds"`
	SampledSeconds float64 `json:"sampled_seconds"`
	// Speedup is ExactSeconds / SampledSeconds.
	Speedup float64 `json:"speedup"`
	// Coverage is the suite-mean fraction of instructions the sampled path
	// measured (~1/16).
	Coverage float64 `json:"coverage"`
	// MeanRelErr is the suite-mean |sampled MPI - exact MPI| / exact MPI
	// over every grid cell with a non-zero exact MPI.
	MeanRelErr float64 `json:"mean_rel_err"`
	// CIHits and CIPoints score interval calibration: at how many cells the
	// exact MPI fell inside the sampled 95% interval.
	CIHits   int `json:"ci_hits"`
	CIPoints int `json:"ci_points"`
	// Passed is the stage verdict: accuracy and calibration always, plus (at
	// golden scale) no more than a 20% speedup regression against the
	// recorded baseline.
	Passed bool `json:"passed"`
	// Detail summarizes the comparison.
	Detail string `json:"detail"`
}

// samplingRegressionFraction gates speedup regressions at the pinned golden
// scale, in the same ratio-of-ratios form as the other bench stages: fail if
// the measured speedup falls below 80% of samplingGoldenSpeedup.
const samplingRegressionFraction = 0.8

// samplingBenchIters is how many times each path is timed (interleaved); the
// reported time per path is the minimum.
const samplingBenchIters = 2

// samplingMeanRelErrMax caps the sampled grid's suite-mean relative MPI
// error as a sanity bound: the dial trades fidelity for speed, but the
// answers must stay in the right neighborhood. 1/16 set sampling on this
// grid measures ~14% in practice (per-set miss distributions are skewed and
// the smallest cells sample a single set); the honest-interval gate below is
// the real fidelity contract — every one of those errors is covered by its
// stated CI95.
const samplingMeanRelErrMax = 0.25

// samplingCIHitFraction is the minimum fraction of grid cells whose exact
// MPI must land inside the sampled 95% interval. Nominal calibration is 95%;
// the floor sits at 90% so the gate flags mis-calibration, not one unlucky
// cell.
const samplingCIHitFraction = 0.9

// samplingBenchGrid is the full capacity x associativity grid both paths
// sweep: 1KB-64KB at a 32-byte line, 1/2/4-way, every cell with at least
// samplingSetMod sets (8 distinct set counts, 16-2048).
func samplingBenchGrid() []sweep.Cell {
	var cells []sweep.Cell
	for size := 1 << 10; size <= 64<<10; size <<= 1 {
		lines := size / 32
		for _, assoc := range []int{1, 2, 4} {
			if sets := lines / assoc; sets >= samplingSetMod {
				cells = append(cells, sweep.Cell{Sets: sets, Assoc: assoc})
			}
		}
	}
	return cells
}

// RunSamplingBench times the exact and 1/16 set-sampled sweeps over the full
// grid and suite, and verifies the sampled path's speed, accuracy, and
// interval calibration. The trace store is warmed with both trace forms (and
// held), so the timings isolate sweep cost.
func RunSamplingBench(opt Options) (*SamplingBench, error) {
	opt = opt.withDefaults()
	sb := &SamplingBench{Instructions: opt.Instructions}
	cells := samplingBenchGrid()

	ctx := context.Background()
	type workload struct {
		name string
		refs []trace.Ref
		runs []trace.Run
	}
	ws := make([]workload, 0, len(opt.Workloads))
	releases := make([]func(), 0, len(opt.Workloads))
	defer func() {
		for _, r := range releases {
			r()
		}
	}()
	for _, p := range opt.Workloads {
		refs, runs, release, err := synth.DefaultStore.InstrRuns(ctx, p, opt.Seed, opt.Instructions)
		if err != nil {
			return nil, fmt.Errorf("check: sampling bench: warming %s: %w", p.Name, err)
		}
		releases = append(releases, release)
		ws = append(ws, workload{name: p.Name, refs: refs, runs: runs})
	}

	var exacts []*sweep.Matrix
	var sampleds []*sweep.SampledMatrix
	for i := 0; i < samplingBenchIters; i++ {
		exacts = exacts[:0]
		start := time.Now()
		for _, w := range ws {
			m, err := sweep.Pass{LineSize: 32, Cells: cells}.Run(w.refs)
			if err != nil {
				return nil, fmt.Errorf("check: sampling bench: exact sweep %s: %w", w.name, err)
			}
			exacts = append(exacts, m)
		}
		if t := time.Since(start).Seconds(); i == 0 || t < sb.ExactSeconds {
			sb.ExactSeconds = t
		}

		sampleds = sampleds[:0]
		start = time.Now()
		for _, w := range ws {
			sm, err := sweep.SampledPass{
				LineSize: 32, Cells: cells, SetMod: samplingSetMod, SetMatch: samplingSetMatch,
			}.Run(w.runs)
			if err != nil {
				return nil, fmt.Errorf("check: sampling bench: sampled sweep %s: %w", w.name, err)
			}
			sampleds = append(sampleds, sm)
		}
		if t := time.Since(start).Seconds(); i == 0 || t < sb.SampledSeconds {
			sb.SampledSeconds = t
		}
	}
	if sb.SampledSeconds > 0 {
		sb.Speedup = sb.ExactSeconds / sb.SampledSeconds
	}

	var sumRel float64
	var nRel int
	for wi := range ws {
		sb.Coverage += sampleds[wi].Coverage() / float64(len(ws))
		for ci := range cells {
			exactMPI := float64(exacts[wi].Misses[ci]) / float64(exacts[wi].Accesses)
			est := sampleds[wi].Estimates[ci]
			sb.CIPoints++
			if est.Contains(exactMPI) {
				sb.CIHits++
			}
			if exactMPI > 0 {
				sumRel += math.Abs(est.MPI-exactMPI) / exactMPI
				nRel++
			}
		}
	}
	if nRel > 0 {
		sb.MeanRelErr = sumRel / float64(nRel)
	}

	goldenScale := opt.Instructions == PinnedInstructions && opt.Seed == 0
	ciFloor := int(math.Ceil(samplingCIHitFraction * float64(sb.CIPoints)))
	perf := fmt.Sprintf("%.1fx speedup (%.2fs -> %.2fs) at %.1f%% coverage, mean |rel err| %.2f%%, CI hits %d/%d",
		sb.Speedup, sb.ExactSeconds, sb.SampledSeconds, 100*sb.Coverage, 100*sb.MeanRelErr, sb.CIHits, sb.CIPoints)
	switch {
	case sb.MeanRelErr > samplingMeanRelErrMax:
		sb.Passed = false
		sb.Detail = fmt.Sprintf("%s; mean |rel err| exceeds %.0f%%", perf, 100*samplingMeanRelErrMax)
	case sb.CIHits < ciFloor:
		sb.Passed = false
		sb.Detail = fmt.Sprintf("%s; CI hits below floor %d", perf, ciFloor)
	case !goldenScale:
		sb.Passed = true
		sb.Detail = perf + "; off golden scale, no regression gate"
	default:
		floor := samplingRegressionFraction * samplingGoldenSpeedup
		sb.Passed = sb.Speedup >= floor
		sb.Detail = fmt.Sprintf("%s; baseline %.1fx, floor %.1fx", perf, samplingGoldenSpeedup, floor)
	}
	return sb, nil
}
