package check

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"regexp"

	"ibsim/internal/experiments"
	"ibsim/internal/fault"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
	"ibsim/internal/xrand"
)

// RunChaos is the deterministic fault-injection suite (ibscheck -faults):
// each scenario perturbs an I/O or execution path with seeded faults and
// asserts the robustness contract — a typed error (ErrCorrupt/ErrTruncated,
// an extractable injected cause, ErrOverBudget, *WorkerError), never a panic
// and never a silently wrong result. Scenarios run inside a recover wrapper,
// so even a regression that reintroduces a panic is reported as an ordinary
// failing Result.
func RunChaos(opt Options) ([]Result, error) {
	opt = opt.withDefaults()
	prof := opt.Workloads[0]
	refs, err := synth.InstrTrace(prof, opt.Seed, 20_000)
	if err != nil {
		return nil, fmt.Errorf("chaos: generating fixture trace: %w", err)
	}
	var sb memSeeker
	if _, err := trace.EncodeSeeker(&sb, trace.NewSliceSource(refs)); err != nil {
		return nil, fmt.Errorf("chaos: encoding fixture trace: %w", err)
	}
	data := sb.buf

	scenarios := []struct {
		name string
		fn   func() Result
	}{
		{"chaos/truncation", func() Result { return chaosTruncation(refs, data) }},
		{"chaos/bit-flip", func() Result { return chaosBitFlip(refs, data, opt.Seed) }},
		{"chaos/short-read", func() Result { return chaosShortRead(refs, data, opt.Seed) }},
		{"chaos/error-after-n", func() Result { return chaosErrAfter(data) }},
		{"chaos/columnar-salvage", func() Result { return chaosColumnarSalvage(refs) }},
		{"chaos/write-fault-sticky", func() Result { return chaosWriteFault(refs) }},
		{"chaos/over-budget-store", func() Result { return chaosOverBudget(prof, opt.Seed) }},
		{"chaos/checkpoint-corrupt", func() Result { return chaosCheckpointCorrupt(prof, opt.Seed) }},
		{"chaos/worker-panic", func() Result { return chaosWorkerPanic(opt) }},
		{"chaos/server-slow-loris", func() Result { return chaosServerSlowLoris(prof, opt.Seed) }},
		{"chaos/server-cancel", func() Result { return chaosServerCancel(prof, opt.Seed) }},
		{"chaos/server-over-budget", func() Result { return chaosServerOverBudget(prof, opt.Seed) }},
		{"chaos/server-sampling-tier", func() Result { return chaosServerSamplingTier(prof, opt.Seed) }},
		{"chaos/server-panic", func() Result { return chaosServerPanic(prof, opt.Seed) }},
		{"chaos/cluster-worker-kill", func() Result { return chaosClusterWorkerKill(prof, opt.Seed) }},
		{"chaos/cluster-hung-worker", func() Result { return chaosClusterHungWorker(prof, opt.Seed) }},
		{"chaos/cluster-corrupt-partial", func() Result { return chaosClusterCorruptPartial(prof, opt.Seed) }},
		{"chaos/cluster-cache-poison", func() Result { return chaosClusterCachePoison(prof, opt.Seed) }},
		{"chaos/cluster-all-workers-lost", func() Result { return chaosClusterAllWorkersLost(prof, opt.Seed) }},
		{"chaos/crash-atomicio", chaosCrashAtomicio},
		{"chaos/crash-manifest", chaosCrashManifest},
		{"chaos/crash-spill", func() Result { return chaosCrashSpill(prof, opt.Seed) }},
		{"chaos/crash-cluster-checkpoint", chaosCrashClusterCheckpoint},
		{"chaos/crash-cluster-cache", chaosCrashClusterCache},
	}
	var filter *regexp.Regexp
	if opt.ChaosFilter != "" {
		var err error
		if filter, err = regexp.Compile(opt.ChaosFilter); err != nil {
			return nil, fmt.Errorf("chaos: bad scenario filter %q: %w", opt.ChaosFilter, err)
		}
	}
	out := make([]Result, 0, len(scenarios))
	for _, s := range scenarios {
		if filter != nil && !filter.MatchString(s.name) {
			continue
		}
		out = append(out, runIsolated(s.name, s.fn))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("chaos: no scenario matches %q", opt.ChaosFilter)
	}
	return out, nil
}

// runIsolated times fn and converts a scenario panic into a failing Result.
func runIsolated(name string, fn func() Result) Result {
	return timed(func() (r Result) {
		defer func() {
			if rec := recover(); rec != nil {
				r = fail(name, "scenario panicked: %v", rec)
			}
		}()
		return fn()
	})
}

// typedDecodeErr reports whether err carries the decoder's typed contract.
func typedDecodeErr(err error) bool {
	return errors.Is(err, trace.ErrCorrupt) || errors.Is(err, trace.ErrTruncated)
}

// chaosTruncation cuts the encoded trace at assorted points: Decode must
// fail typed, and DecodeSalvage must recover exactly a prefix with the
// partial flag set.
func chaosTruncation(refs []trace.Ref, data []byte) Result {
	const name = "chaos/truncation"
	cuts := []int{0, 7, 20, 21, len(data) / 3, len(data) / 2, len(data) - 5, len(data) - 1}
	for _, cut := range cuts {
		mut := fault.Truncate(data, int64(cut))
		if _, err := trace.Decode(bytes.NewReader(mut)); err == nil {
			return fail(name, "cut at %d decoded without error", cut)
		}
		got, complete, err := trace.DecodeSalvage(bytes.NewReader(mut))
		if complete {
			return fail(name, "cut at %d salvaged as complete", cut)
		}
		if cut >= 20 && !typedDecodeErr(err) {
			return fail(name, "cut at %d: untyped salvage error %v", cut, err)
		}
		if len(got) > len(refs) {
			return fail(name, "cut at %d salvaged %d refs from a %d-ref trace", cut, len(got), len(refs))
		}
		for i := range got {
			if got[i] != refs[i] {
				return fail(name, "cut at %d: salvaged ref %d is not a prefix", cut, i)
			}
		}
	}
	return pass(name, "%d cut points: typed errors, exact-prefix salvage", len(cuts))
}

// chaosBitFlip flips seeded bits in the record body and trailer: every
// corrupted stream either fails typed or decodes to the exact original.
func chaosBitFlip(refs []trace.Ref, data []byte, seed uint64) Result {
	const name = "chaos/bit-flip"
	const trials = 64
	rng := xrand.New(seed ^ 0xb17f11b5)
	caught := 0
	for trial := 0; trial < trials; trial++ {
		// Corrupt payload bytes only; header corruption is FuzzHeader's job.
		flipped := fault.FlipBits(data[20:], rng.Uint64(), 1+int(rng.Uint64n(3)))
		mut := append(append([]byte(nil), data[:20]...), flipped...)
		got, err := trace.Decode(bytes.NewReader(mut))
		if err != nil {
			if !typedDecodeErr(err) {
				return fail(name, "trial %d: untyped error %v", trial, err)
			}
			caught++
			continue
		}
		if len(got) != len(refs) {
			return fail(name, "trial %d: silent wrong count %d", trial, len(got))
		}
		for i := range refs {
			if got[i] != refs[i] {
				return fail(name, "trial %d: silent wrong ref %d", trial, i)
			}
		}
	}
	if caught == 0 {
		return fail(name, "no corruption detected across %d trials", trials)
	}
	return pass(name, "%d/%d seeded corruptions caught, rest decoded exactly", caught, trials)
}

// chaosShortRead decodes through a reader that delivers arbitrary short
// reads; the result must be identical to a direct decode.
func chaosShortRead(refs []trace.Ref, data []byte, seed uint64) Result {
	const name = "chaos/short-read"
	for trial := 0; trial < 8; trial++ {
		r := fault.NewReader(bytes.NewReader(data), fault.Plan{ShortIO: true, Seed: seed + uint64(trial)})
		got, err := trace.Decode(r)
		if err != nil {
			return fail(name, "trial %d: decode failed under short reads: %v", trial, err)
		}
		if len(got) != len(refs) {
			return fail(name, "trial %d: %d refs, want %d", trial, len(got), len(refs))
		}
		for i := range refs {
			if got[i] != refs[i] {
				return fail(name, "trial %d: ref %d differs", trial, i)
			}
		}
	}
	return pass(name, "8 short-read schedules decoded identically")
}

// chaosErrAfter injects an I/O error after N bytes: the decode must fail
// with the injected cause still extractable via errors.Is.
func chaosErrAfter(data []byte) Result {
	const name = "chaos/error-after-n"
	boom := errors.New("chaos: injected disk failure")
	offsets := []int64{0, 5, 19, 20, 33, int64(len(data)) / 2, int64(len(data)) - 2}
	for _, at := range offsets {
		r := fault.NewReader(bytes.NewReader(data), fault.Plan{Err: boom, ErrAfter: at})
		if _, err := trace.Decode(r); err == nil {
			return fail(name, "error after %d bytes: decode succeeded", at)
		} else if !errors.Is(err, boom) {
			return fail(name, "error after %d bytes: cause lost: %v", at, err)
		}
	}
	return pass(name, "%d injection offsets: cause extractable, no panic", len(offsets))
}

// chaosWriteFault writes through a failing writer: the first failure must
// surface and then stay sticky across further Put and Close calls.
func chaosWriteFault(refs []trace.Ref) Result {
	const name = "chaos/write-fault-sticky"
	boom := errors.New("chaos: injected write failure")
	w, err := trace.NewWriter(fault.NewWriter(io.Discard, fault.Plan{Err: boom, ErrAfter: 256}))
	if err != nil {
		// The header itself fits the budget; construction must succeed.
		return fail(name, "NewWriter failed: %v", err)
	}
	var first error
	for _, r := range refs {
		if first = w.Put(r); first != nil {
			break
		}
	}
	if first == nil {
		first = w.Close()
	}
	if !errors.Is(first, boom) {
		return fail(name, "injected write failure not surfaced: %v", first)
	}
	if again := w.Put(trace.Ref{Addr: 4, Kind: trace.IFetch}); again != first {
		return fail(name, "Put after failure = %v, want sticky %v", again, first)
	}
	if again := w.Close(); again != first {
		return fail(name, "Close after failure = %v, want sticky %v", again, first)
	}
	return pass(name, "write fault surfaced once and stayed sticky")
}

// chaosOverBudget verifies the store's hard-budget contract: Instr fails
// typed, Source degrades to streaming regeneration with identical refs.
func chaosOverBudget(prof synth.Profile, seed uint64) Result {
	const name = "chaos/over-budget-store"
	const n = 5000
	store := synth.NewStoreLimits(0, n/4*16) // budget fits n/4 refs at 16 B each
	if _, _, err := store.Instr(prof, seed, n); !errors.Is(err, synth.ErrOverBudget) {
		return fail(name, "Instr over budget = %v, want ErrOverBudget", err)
	}
	src, release, err := store.Source(prof, seed, n)
	if err != nil {
		return fail(name, "Source fallback failed: %v", err)
	}
	got, err := trace.Collect(src)
	release()
	if err != nil {
		return fail(name, "streaming fallback errored: %v", err)
	}
	want, err := synth.InstrTrace(prof, seed, n)
	if err != nil {
		return fail(name, "reference generation failed: %v", err)
	}
	if len(got) != len(want) {
		return fail(name, "fallback streamed %d refs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fail(name, "fallback ref %d differs from materialized path", i)
		}
	}
	if st := store.Stats(); st.Fallbacks != 1 {
		return fail(name, "Fallbacks = %d, want 1", st.Fallbacks)
	}
	return pass(name, "Instr fails typed, Source streams %d identical refs", len(want))
}

// chaosCheckpointCorrupt flips a bit in every checkpoint at or below a seek
// target: SeekTo must detect each corruption by CRC, drop the damaged
// checkpoint, and fall back — ultimately to a full regeneration from
// instruction zero — landing on exactly the references sequential
// generation yields. A damaged index degrades and self-heals (the fallback
// pass re-records the positions it dropped); it never fails a seek and
// never yields a wrong reference.
func chaosCheckpointCorrupt(prof synth.Profile, seed uint64) Result {
	const name = "chaos/checkpoint-corrupt"
	const (
		n      = int64(60_000)
		every  = int64(2048)
		target = int64(50_000)
		tail   = int64(128)
	)
	ix := synth.NewCheckpointIndex(every)
	src, err := synth.NewSeekSource(prof, seed, n, ix)
	if err != nil {
		return fail(name, "building seek source: %v", err)
	}
	refs := make([]trace.Ref, 0, n)
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		refs = append(refs, r)
	}
	healthy := ix.Len()
	if healthy == 0 {
		return fail(name, "full generation pass recorded no checkpoints")
	}
	// Corrupt every checkpoint at or below the target. Nearest returns a
	// struct copy, but its Data slice shares the backing array with the
	// stored checkpoint, so the flip lands in the index.
	corrupted := 0
	for i := target; ; {
		ck, ok := ix.Nearest(i)
		if !ok {
			break
		}
		ck.Data[len(ck.Data)/2] ^= 0x10
		corrupted++
		if ck.Instr == 0 {
			break
		}
		i = ck.Instr - 1
	}
	if corrupted == 0 {
		return fail(name, "no checkpoints at or below instruction %d to corrupt", target)
	}
	if err := src.SeekTo(target); err != nil {
		return fail(name, "seek over a fully corrupt index errored: %v", err)
	}
	for k := int64(0); k < tail && target+k < n; k++ {
		got, ok := src.Next()
		if !ok {
			return fail(name, "source ended at instruction %d of %d after corrupt-index seek", target+k, n)
		}
		if got != refs[target+k] {
			return fail(name, "instruction %d after corrupt-index seek diverges from sequential generation", target+k)
		}
	}
	st := ix.Stats()
	if st.Corrupt != int64(corrupted) {
		return fail(name, "index counted %d corrupt checkpoints, %d were corrupted", st.Corrupt, corrupted)
	}
	if got := ix.Len(); got != healthy {
		return fail(name, "index holds %d checkpoints after the healing seek, want %d", got, healthy)
	}
	return pass(name, "%d/%d checkpoints corrupted: every CRC failure detected and dropped, seek fell back to instruction 0, %d-ref tail bit-identical, index self-healed",
		corrupted, healthy, tail)
}

// chaosWorkerPanic proves a panicking experiment worker is isolated into a
// typed, attributed *WorkerError instead of crashing the run.
func chaosWorkerPanic(opt Options) Result {
	const name = "chaos/worker-panic"
	err := experiments.PanicIsolationSelfTest(experiments.Options{Instructions: 1000, Seed: opt.Seed})
	if err == nil {
		return fail(name, "injected panic vanished")
	}
	var we *experiments.WorkerError
	if !errors.As(err, &we) {
		return fail(name, "panic surfaced untyped: %v", err)
	}
	if we.Workload == "" || we.Stack == "" {
		return fail(name, "WorkerError missing attribution: %+v", we)
	}
	return pass(name, "panic isolated as WorkerError for %q", we.Workload)
}

// memSeeker is an in-memory io.WriteSeeker for building counted trace
// fixtures.
type memSeeker struct {
	buf []byte
	pos int64
}

func (m *memSeeker) Write(p []byte) (int, error) {
	if need := m.pos + int64(len(p)); need > int64(len(m.buf)) {
		grown := make([]byte, need)
		copy(grown, m.buf)
		m.buf = grown
	}
	copy(m.buf[m.pos:], p)
	m.pos += int64(len(p))
	return len(p), nil
}

func (m *memSeeker) Seek(offset int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		m.pos = offset
	case io.SeekCurrent:
		m.pos += offset
	case io.SeekEnd:
		m.pos = int64(len(m.buf)) + offset
	default:
		return 0, fmt.Errorf("memSeeker: bad whence %d", whence)
	}
	if m.pos < 0 {
		return 0, fmt.Errorf("memSeeker: negative position")
	}
	return m.pos, nil
}
