// Package check is the simulator-verification subsystem: mechanical proofs
// that the cache and fetch models obey the textbook invariants the paper's
// results depend on, differential tests pinning the parallel experiment
// runners and the trace codec to trusted reference paths, and a pinned
// benchmark-regression harness (driven by cmd/ibscheck) that compares
// CPI/MPI outputs against committed golden values.
//
// Three pillars:
//
//   - Metamorphic invariants: LRU inclusion (Mattson stack semantics — a
//     larger or more-associative cache never misses where a smaller one
//     hits), miss-ratio monotonicity in cache size across the IBS suite,
//     fetch-engine bounds (no engine beats the traffic-free lower bound of
//     one link latency per demand miss, and the bypass/stream engines never
//     do worse than the blocking baseline they refine), and streaming
//     (RunSource) vs materialized (Run) result equality.
//   - Differential testing: the concurrent suite runners in
//     internal/experiments must render bit-identical exhibits to the
//     Options.Serial reference executor, and a trace-file round trip
//     (encode → decode) must preserve simulation results exactly.
//   - Benchmark regression: RunBench times a pinned set of simulations and
//     compares their CPI/MPI against golden.go within explicit tolerances.
//
// Every check is also exercised as an ordinary `go test` case in this
// package, so `go test ./...` verifies the simulators without the CLI.
package check

import (
	"fmt"
	"time"

	"ibsim/internal/synth"
)

// Options scales the verification run.
type Options struct {
	// Instructions is the per-workload instruction budget (default
	// PinnedInstructions, the scale the committed goldens were measured
	// at).
	Instructions int64
	// Seed offsets workload generation seeds; 0 keeps the calibrated
	// profile seeds (goldens assume 0).
	Seed uint64
	// Workloads is the profile set invariants sweep over (default: the
	// Mach IBS suite, Section 5's evaluation set).
	Workloads []synth.Profile
	// ChaosFilter restricts RunChaos to scenarios whose name matches this
	// regular expression; "" runs the full suite (ibscheck -match).
	ChaosFilter string
}

func (o Options) withDefaults() Options {
	if o.Instructions <= 0 {
		o.Instructions = PinnedInstructions
	}
	if len(o.Workloads) == 0 {
		o.Workloads = synth.IBSMach()
	}
	return o
}

// Result is one check's verdict.
type Result struct {
	// Name identifies the check, e.g. "invariant/lru-inclusion-assoc".
	Name string `json:"name"`
	// Passed reports whether the property held.
	Passed bool `json:"passed"`
	// Detail is a one-line summary: the quantities compared, or the first
	// violation found.
	Detail string `json:"detail"`
	// Seconds is the check's wall-clock time.
	Seconds float64 `json:"seconds"`
}

// pass and fail build Results.
func pass(name, format string, args ...any) Result {
	return Result{Name: name, Passed: true, Detail: fmt.Sprintf(format, args...)}
}

func fail(name, format string, args ...any) Result {
	return Result{Name: name, Passed: false, Detail: fmt.Sprintf(format, args...)}
}

// timed runs fn, stamping its wall-clock time into the Result.
func timed(fn func() Result) Result {
	start := time.Now()
	r := fn()
	r.Seconds = time.Since(start).Seconds()
	return r
}

// RunAll executes every invariant and differential check and returns one
// Result per check, in a fixed order. A non-nil error reports a harness
// failure (a simulator constructor rejecting a pinned configuration), not a
// check failure.
func RunAll(opt Options) ([]Result, error) {
	opt = opt.withDefaults()
	var out []Result
	for _, fn := range []func(Options) ([]Result, error){
		Inclusion,
		Monotonicity,
		EngineBounds,
		StreamingEquality,
		ParallelVsSerial,
		SweepVsPerConfig,
		FanoutVsPerConfig,
		TraceRoundTrip,
		ColumnarReplay,
		SamplingBounds,
		SamplingProperties,
		SeekChecks,
	} {
		rs, err := fn(opt)
		if err != nil {
			return out, err
		}
		out = append(out, rs...)
	}
	return out, nil
}

// AllPassed reports whether every result passed.
func AllPassed(rs []Result) bool {
	for _, r := range rs {
		if !r.Passed {
			return false
		}
	}
	return true
}
