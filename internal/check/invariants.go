package check

import (
	"fmt"

	"ibsim/internal/cache"
	"ibsim/internal/fetch"
	"ibsim/internal/memsys"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

// checkLink is the on-chip L1↔L2 interface every engine invariant runs
// against (6-cycle latency, 16 B/cycle — the paper's Figure 3 link, and the
// only baseline fast enough for the stream engine's one-line-per-cycle
// model).
func checkLink() memsys.Transfer { return memsys.L1L2Link() }

// baseL1 is the paper's constrained primary cache.
func baseL1() cache.Config { return cache.Config{Size: 8192, LineSize: 32, Assoc: 1} }

// Inclusion verifies Mattson stack semantics on the LRU cache model, per
// access, against every workload: a cache that dominates another (same sets,
// higher associativity; or fully associative, larger capacity) never misses
// on a reference the dominated cache hits.
func Inclusion(opt Options) ([]Result, error) {
	opt = opt.withDefaults()

	// Same set count (64 sets × 32-B lines), associativity 1→2→4→8.
	assocChain := []cache.Config{
		{Size: 2048, LineSize: 32, Assoc: 1},
		{Size: 4096, LineSize: 32, Assoc: 2},
		{Size: 8192, LineSize: 32, Assoc: 4},
		{Size: 16384, LineSize: 32, Assoc: 8},
	}
	// Fully associative LRU, capacity 2 KB → 16 KB.
	faChain := []cache.Config{
		{Size: 2048, LineSize: 32},
		{Size: 4096, LineSize: 32},
		{Size: 8192, LineSize: 32},
		{Size: 16384, LineSize: 32},
	}

	var out []Result
	for _, tc := range []struct {
		name  string
		chain []cache.Config
	}{
		{"invariant/lru-inclusion-assoc", assocChain},
		{"invariant/lru-inclusion-capacity", faChain},
	} {
		tc := tc
		var err error
		out = append(out, timed(func() Result {
			var accesses int64
			for _, p := range opt.Workloads {
				var refs []trace.Ref
				refs, err = synth.InstrTrace(p, opt.Seed, opt.Instructions)
				if err != nil {
					return fail(tc.name, "trace generation: %v", err)
				}
				var res Result
				var ok bool
				res, ok, err = runInclusion(tc.name, p.Name, refs, tc.chain)
				if err != nil || !ok {
					return res
				}
				accesses += int64(len(refs))
			}
			return pass(tc.name, "%d workloads x %d refs, no inclusion violation across %d geometries",
				len(opt.Workloads), opt.Instructions, len(tc.chain))
		}))
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// runInclusion replays refs through the chain in lockstep and reports the
// first access where a dominated cache hits but its dominating neighbor
// misses.
func runInclusion(name, workload string, refs []trace.Ref, chain []cache.Config) (Result, bool, error) {
	caches := make([]*cache.Cache, len(chain))
	for i, cfg := range chain {
		c, err := cache.New(cfg)
		if err != nil {
			return fail(name, "building %v: %v", cfg, err), false, err
		}
		caches[i] = c
	}
	hits := make([]bool, len(caches))
	for n, r := range refs {
		for i, c := range caches {
			hits[i] = c.Access(r.Addr)
		}
		for i := 1; i < len(caches); i++ {
			if hits[i-1] && !hits[i] {
				return fail(name, "%s ref %d addr %#x: %v hit but %v missed",
					workload, n, r.Addr, chain[i-1], chain[i]), false, nil
			}
		}
	}
	return Result{}, true, nil
}

// Monotonicity verifies that the miss ratio never rises as capacity grows:
// strictly per workload for fully-associative LRU (a consequence of the
// stack property), and at suite-mean level for the paper's direct-mapped
// geometry, where individual workloads may wiggle (conflict misses are not a
// stack algorithm) but the suite trend Section 4 plots must hold.
func Monotonicity(opt Options) ([]Result, error) {
	opt = opt.withDefaults()
	var out []Result
	var harnessErr error

	// Fully-associative LRU: per-workload, strictly nonincreasing misses.
	out = append(out, timed(func() Result {
		const name = "invariant/miss-monotonic-fa"
		sizes := []int{1024, 2048, 4096, 8192, 16384, 32768}
		for _, p := range opt.Workloads {
			refs, err := synth.InstrTrace(p, opt.Seed, opt.Instructions)
			if err != nil {
				harnessErr = err
				return fail(name, "trace generation: %v", err)
			}
			prev := int64(-1)
			for i, size := range sizes {
				misses, err := replayMisses(refs, cache.Config{Size: size, LineSize: 32})
				if err != nil {
					harnessErr = err
					return fail(name, "%v", err)
				}
				if prev >= 0 && misses > prev {
					return fail(name, "%s: %dKB FA-LRU missed %d > %dKB's %d",
						p.Name, size/1024, misses, sizes[i-1]/1024, prev)
				}
				prev = misses
			}
		}
		return pass(name, "%d workloads, FA-LRU misses nonincreasing over %d capacities",
			len(opt.Workloads), 6)
	}))
	if harnessErr != nil {
		return out, harnessErr
	}

	// Direct-mapped (the paper's geometry): suite-mean miss ratio must not
	// rise by more than dmSlack relative when capacity doubles.
	out = append(out, timed(func() Result {
		const name = "invariant/miss-monotonic-dm"
		const dmSlack = 0.01
		sizes := []int{2048, 4096, 8192, 16384, 32768, 65536, 131072}
		means := make([]float64, len(sizes))
		for _, p := range opt.Workloads {
			refs, err := synth.InstrTrace(p, opt.Seed, opt.Instructions)
			if err != nil {
				harnessErr = err
				return fail(name, "trace generation: %v", err)
			}
			for i, size := range sizes {
				misses, err := replayMisses(refs, cache.Config{Size: size, LineSize: 32, Assoc: 1})
				if err != nil {
					harnessErr = err
					return fail(name, "%v", err)
				}
				means[i] += float64(misses) / float64(len(refs)) / float64(len(opt.Workloads))
			}
		}
		for i := 1; i < len(means); i++ {
			if means[i] > means[i-1]*(1+dmSlack) {
				return fail(name, "suite-mean DM miss ratio rose %dKB→%dKB: %.5f → %.5f (slack %.0f%%)",
					sizes[i-1]/1024, sizes[i]/1024, means[i-1], means[i], dmSlack*100)
			}
		}
		return pass(name, "suite-mean DM miss ratio %.5f→%.5f over %dKB→%dKB, nonincreasing",
			means[0], means[len(means)-1], sizes[0]/1024, sizes[len(sizes)-1]/1024)
	}))
	return out, harnessErr
}

// replayMisses counts misses replaying refs through one cache geometry.
func replayMisses(refs []trace.Ref, cfg cache.Config) (int64, error) {
	c, err := cache.New(cfg)
	if err != nil {
		return 0, fmt.Errorf("check: building %v: %w", cfg, err)
	}
	for _, r := range refs {
		c.Access(r.Addr)
	}
	return c.Stats().Misses, nil
}

// EngineBounds pins the Section 5 fetch engines between two oracles on every
// workload:
//
//   - Traffic-free lower bound: no engine's stall time can beat one link
//     latency per demand miss — the first word of a miss cannot arrive
//     sooner even with infinite bandwidth and no prefetch traffic.
//   - Blocking upper bound: the bypass engine (same fills, earlier restart)
//     must match the blocking engine's miss sequence exactly and never
//     stall longer; the stream engine's demand misses plus buffer hits must
//     equal the blocking engine's misses (identical L1 trajectories), with
//     total stalls no worse.
func EngineBounds(opt Options) ([]Result, error) {
	opt = opt.withDefaults()
	link := checkLink()
	cfg := baseL1()
	const depth = 6

	type engineRun struct {
		name string
		mk   func() (fetch.Engine, error)
	}
	runs := []engineRun{
		{"blocking", func() (fetch.Engine, error) { return fetch.NewBlocking(cfg, link, 0) }},
		{"prefetch2", func() (fetch.Engine, error) { return fetch.NewBlocking(cfg, link, 2) }},
		{"bypass0", func() (fetch.Engine, error) { return fetch.NewBypass(cfg, link, 0) }},
		{"bypass2", func() (fetch.Engine, error) { return fetch.NewBypass(cfg, link, 2) }},
		{"stream", func() (fetch.Engine, error) { return fetch.NewStream(cfg, link, depth) }},
	}

	var harnessErr error
	lower := timed(func() Result {
		const name = "invariant/engine-lower-bound"
		for _, p := range opt.Workloads {
			refs, err := synth.InstrTrace(p, opt.Seed, opt.Instructions)
			if err != nil {
				harnessErr = err
				return fail(name, "trace generation: %v", err)
			}
			for _, er := range runs {
				e, err := er.mk()
				if err != nil {
					harnessErr = err
					return fail(name, "building %s: %v", er.name, err)
				}
				res := fetch.Run(e, refs)
				if min := res.Misses * int64(link.Latency); res.StallCycles < min {
					return fail(name, "%s/%s: %d stall cycles beat the traffic-free bound %d (%d misses x %d-cycle latency)",
						p.Name, er.name, res.StallCycles, min, res.Misses, link.Latency)
				}
			}
		}
		return pass(name, "%d workloads x %d engines: stalls >= misses x %d-cycle latency",
			len(opt.Workloads), len(runs), link.Latency)
	})
	if harnessErr != nil {
		return []Result{lower}, harnessErr
	}

	upper := timed(func() Result {
		const name = "invariant/engine-blocking-bound"
		for _, p := range opt.Workloads {
			refs, err := synth.InstrTrace(p, opt.Seed, opt.Instructions)
			if err != nil {
				harnessErr = err
				return fail(name, "trace generation: %v", err)
			}
			results := make(map[string]fetch.Result, len(runs))
			for _, er := range runs {
				e, err := er.mk()
				if err != nil {
					harnessErr = err
					return fail(name, "building %s: %v", er.name, err)
				}
				results[er.name] = fetch.Run(e, refs)
			}
			for _, pair := range [][2]string{{"bypass0", "blocking"}, {"bypass2", "prefetch2"}} {
				by, bl := results[pair[0]], results[pair[1]]
				if by.Misses != bl.Misses {
					return fail(name, "%s: %s misses %d != %s misses %d (identical fill policies must agree)",
						p.Name, pair[0], by.Misses, pair[1], bl.Misses)
				}
				if by.StallCycles > bl.StallCycles {
					return fail(name, "%s: %s stalled %d > %s's %d (restart-on-missing-word must not lose)",
						p.Name, pair[0], by.StallCycles, pair[1], bl.StallCycles)
				}
			}
			st, bl := results["stream"], results["blocking"]
			if st.Misses+st.BufferHits != bl.Misses {
				return fail(name, "%s: stream misses %d + buffer hits %d != blocking misses %d (L1 trajectories must match)",
					p.Name, st.Misses, st.BufferHits, bl.Misses)
			}
			if st.StallCycles > bl.StallCycles {
				return fail(name, "%s: stream stalled %d > blocking's %d", p.Name, st.StallCycles, bl.StallCycles)
			}
		}
		return pass(name, "%d workloads: bypass/stream never worse than blocking, miss accounting consistent",
			len(opt.Workloads))
	})
	return []Result{lower, upper}, harnessErr
}

// StreamingEquality verifies that driving an engine from the streaming
// generator (fetch.RunSource over synth.InstrSource — the O(1)-memory path
// ibsim.SimulateFetch uses) produces results bit-identical to replaying a
// materialized trace (fetch.Run), and likewise for raw cache replay.
func StreamingEquality(opt Options) ([]Result, error) {
	opt = opt.withDefaults()
	link := checkLink()
	cfg := baseL1()
	engines := []struct {
		name string
		mk   func() (fetch.Engine, error)
	}{
		{"blocking2", func() (fetch.Engine, error) { return fetch.NewBlocking(cfg, link, 2) }},
		{"bypass2", func() (fetch.Engine, error) { return fetch.NewBypass(cfg, link, 2) }},
		{"stream6", func() (fetch.Engine, error) { return fetch.NewStream(cfg, link, 6) }},
	}

	var harnessErr error
	res := timed(func() Result {
		const name = "invariant/streaming-equality"
		for _, p := range opt.Workloads {
			refs, err := synth.InstrTrace(p, opt.Seed, opt.Instructions)
			if err != nil {
				harnessErr = err
				return fail(name, "trace generation: %v", err)
			}
			for _, eng := range engines {
				e1, err := eng.mk()
				if err != nil {
					harnessErr = err
					return fail(name, "building %s: %v", eng.name, err)
				}
				materialized := fetch.Run(e1, refs)
				src, err := synth.InstrSource(p, opt.Seed, opt.Instructions)
				if err != nil {
					harnessErr = err
					return fail(name, "source: %v", err)
				}
				e2, err := eng.mk()
				if err != nil {
					harnessErr = err
					return fail(name, "building %s: %v", eng.name, err)
				}
				streamed, err := fetch.RunSource(e2, src)
				if err != nil {
					return fail(name, "%s/%s: RunSource error: %v", p.Name, eng.name, err)
				}
				if materialized != streamed {
					return fail(name, "%s/%s: Run %+v != RunSource %+v", p.Name, eng.name, materialized, streamed)
				}
			}
			// Raw cache replay: Access over slice vs over source.
			c1, err := cache.New(cfg)
			if err != nil {
				harnessErr = err
				return fail(name, "%v", err)
			}
			for _, r := range refs {
				c1.Access(r.Addr)
			}
			src, err := synth.InstrSource(p, opt.Seed, opt.Instructions)
			if err != nil {
				harnessErr = err
				return fail(name, "source: %v", err)
			}
			c2, err := cache.New(cfg)
			if err != nil {
				harnessErr = err
				return fail(name, "%v", err)
			}
			for {
				r, ok := src.Next()
				if !ok {
					break
				}
				c2.Access(r.Addr)
			}
			if c1.Stats() != c2.Stats() {
				return fail(name, "%s: cache replay stats %+v != streamed %+v", p.Name, c1.Stats(), c2.Stats())
			}
		}
		return pass(name, "%d workloads x %d engines + cache replay: streaming == materialized",
			len(opt.Workloads), len(engines))
	})
	return []Result{res}, harnessErr
}
