package check

import "testing"

// The sampling calibration checks and bench must pass at a reduced scale
// (off golden scale, so the bench skips only the speedup-regression gate —
// accuracy and CI calibration are still enforced).
func TestSamplingChecks(t *testing.T) {
	opt := Options{Instructions: 60_000}
	for _, fn := range []struct {
		name string
		run  func(Options) ([]Result, error)
	}{
		{"bounds", SamplingBounds},
		{"properties", SamplingProperties},
	} {
		rs, err := fn.run(opt)
		if err != nil {
			t.Fatalf("%s: harness failure: %v", fn.name, err)
		}
		for _, r := range rs {
			if !r.Passed {
				t.Errorf("%s: %s failed: %s", fn.name, r.Name, r.Detail)
			}
		}
	}
}

func TestSamplingBench(t *testing.T) {
	if testing.Short() {
		t.Skip("bench timing in -short mode")
	}
	sb, err := RunSamplingBench(Options{Instructions: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if !sb.Passed {
		t.Fatalf("sampling bench failed: %s", sb.Detail)
	}
	if sb.Speedup < 2 {
		t.Errorf("sampled sweep only %.1fx faster than exact: %s", sb.Speedup, sb.Detail)
	}
	if sb.Coverage <= 0 || sb.Coverage > 0.2 {
		t.Errorf("coverage %v outside (0, 0.2]", sb.Coverage)
	}
}
