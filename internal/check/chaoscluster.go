package check

import (
	"bytes"
	"context"
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"ibsim/internal/cluster"
	"ibsim/internal/fault"
	"ibsim/internal/server"
	"ibsim/internal/server/client"
	"ibsim/internal/synth"
)

// The cluster chaos scenarios drive the scatter-gather coordinator
// (internal/cluster) over live in-process workers through its failure
// modes — a worker killed mid-sweep, a hung worker, a corrupt shard
// checkpoint, a poisoned result cache, and total worker loss — and assert
// the coordinator contract: the merged miss matrix stays byte-identical to
// a single-process run, restarts resume from checkpointed partials,
// corruption is caught by the manifest seal and recomputed, and losing
// every worker degrades to local execution instead of refusing.

// clusterGrid is an 8-cell sweep grid, enough to split across 2-3 shards.
func clusterGrid() []server.CellSpec {
	var cells []server.CellSpec
	for _, sets := range []int{64, 128, 256, 512} {
		for _, assoc := range []int{1, 2} {
			cells = append(cells, server.CellSpec{Sets: sets, Assoc: assoc})
		}
	}
	return cells
}

func clusterSweepReq(workload string, seed uint64, n int64) server.SweepRequest {
	return server.SweepRequest{
		Workload:      workload,
		Seed:          seed,
		Instructions:  n,
		LineSize:      32,
		CountDistinct: true,
		Cells:         clusterGrid(),
	}
}

// fastCaller is a worker client tuned for chaos runs: one quick retry so
// failover decisions happen in milliseconds, not seconds.
func fastCaller(base string) cluster.Caller {
	return client.New(base, client.WithRetries(1), client.WithBackoff(5*time.Millisecond, 25*time.Millisecond))
}

// chaosCoordinator builds a coordinator over urls with fast failover and,
// when dir != "", durable checkpoints and cache. Local fallback is off so
// the scenarios observe pure scatter behavior.
func chaosCoordinator(urls []string, dir string, shards int, hedge time.Duration) *cluster.Coordinator {
	return cluster.New(cluster.Config{
		Workers:              urls,
		NewCaller:            fastCaller,
		DisableLocalFallback: true,
		Dir:                  dir,
		MaxShards:            shards,
		HedgeAfter:           hedge,
		BackoffBase:          10 * time.Millisecond,
		BackoffMax:           100 * time.Millisecond,
	})
}

// normalizeSweepJSON renders a sweep response with the wall-clock field
// zeroed, so two runs of the same work compare byte-identical.
func normalizeSweepJSON(resp *server.SweepResponse) []byte {
	cp := *resp
	cp.ElapsedSeconds = 0
	b, _ := json.Marshal(cp)
	return b
}

// chaosClusterWorkerKill is the headline scenario: 3 workers, one killed
// abruptly while it holds a shard mid-sweep. The merged matrix must still
// land, byte-identical to a single-process run. Then a second sweep is
// interrupted after exactly one shard checkpoints, and a restarted
// coordinator must resume from the partial — recomputing only the missing
// shard.
func chaosClusterWorkerKill(prof synth.Profile, seed uint64) Result {
	const name = "chaos/cluster-worker-kill"
	const n = 30_000
	dir, err := os.MkdirTemp("", "ibsim-chaos-cluster-")
	if err != nil {
		return fail(name, "tempdir: %v", err)
	}
	defer os.RemoveAll(dir)

	// The fault hook runs in two modes: mode 1 picks the first worker to
	// reach the sweep stage as the victim and holds its request in flight
	// while the kill lands; mode 2 lets exactly one sweep through globally
	// and panics the rest, leaving a run half-checkpointed.
	var (
		mode       atomic.Int32
		chosen     atomic.Int32
		allowance  atomic.Int32
		sweepCalls atomic.Int32
	)
	chosen.Store(-1)
	victimc := make(chan int, 1)

	workers := make([]*liveServer, 3)
	alive := make([]bool, 3)
	for i := range workers {
		i := i
		ls, err := startServer(server.Config{
			Store: synth.NewStore(1 << 24),
			FaultHook: func(stage string) {
				if stage != "run:sweep" {
					return
				}
				sweepCalls.Add(1)
				switch mode.Load() {
				case 1:
					if chosen.CompareAndSwap(-1, int32(i)) {
						victimc <- i
						time.Sleep(250 * time.Millisecond)
					}
				case 2:
					if allowance.Add(1) > 1 {
						panic("chaos: injected shard failure")
					}
				}
			},
		})
		if err != nil {
			return fail(name, "starting worker %d: %v", i, err)
		}
		workers[i], alive[i] = ls, true
	}
	defer func() {
		for i, ls := range workers {
			if alive[i] {
				ls.stop()
			}
		}
	}()
	urls := []string{workers[0].base, workers[1].base, workers[2].base}
	req := clusterSweepReq(prof.Name, seed, n)

	// Phase 1: kill 1 of 3 workers mid-sweep.
	mode.Store(1)
	c1 := chaosCoordinator(urls, dir, 3, -1)
	defer c1.Close()
	type sweepOut struct {
		resp *server.SweepResponse
		err  error
	}
	done := make(chan sweepOut, 1)
	go func() {
		r, e := c1.Sweep(context.Background(), req)
		done <- sweepOut{r, e}
	}()
	var victim int
	select {
	case victim = <-victimc:
	case <-time.After(10 * time.Second):
		return fail(name, "no shard reached a worker within 10s")
	}
	workers[victim].hs.Close() // abrupt kill: connections severed mid-request
	alive[victim] = false
	out := <-done
	mode.Store(0)
	if out.err != nil {
		return fail(name, "sweep died with the worker: %v", out.err)
	}
	if out.resp.Degraded {
		return fail(name, "merged answer degraded despite 2 live workers: %s", out.resp.DegradedReason)
	}
	if c1.Metric("cluster_rescatter_total") == 0 {
		return fail(name, "killed worker's shard was never re-scattered")
	}
	ref, err := client.New(workers[(victim+1)%3].base).Sweep(context.Background(), req)
	if err != nil {
		return fail(name, "single-process reference: %v", err)
	}
	if !bytes.Equal(normalizeSweepJSON(out.resp), normalizeSweepJSON(ref)) {
		return fail(name, "merged matrix differs from single-process run")
	}

	// Phase 2: interrupt a fresh sweep after one shard checkpoints, then
	// restart the coordinator against the same Dir.
	var live []string
	for i, ls := range workers {
		if alive[i] {
			live = append(live, ls.base)
		}
	}
	req2 := clusterSweepReq(prof.Name, seed+1, n)
	mode.Store(2)
	c2 := chaosCoordinator(live, dir, 2, -1)
	defer c2.Close()
	if _, err := c2.Sweep(context.Background(), req2); err == nil {
		mode.Store(0)
		return fail(name, "interrupted sweep reported success")
	}
	mode.Store(0)

	c3 := chaosCoordinator(live, dir, 2, -1)
	defer c3.Close()
	before := sweepCalls.Load()
	resumed, err := c3.Sweep(context.Background(), req2)
	if err != nil {
		return fail(name, "restarted coordinator failed: %v", err)
	}
	if c3.Metric("cluster_checkpoint_resume_total") == 0 {
		return fail(name, "restart did not resume from the checkpointed partial")
	}
	if delta := sweepCalls.Load() - before; delta != 1 {
		return fail(name, "restart recomputed %d shards, want only the 1 missing", delta)
	}
	ref2, err := client.New(live[0]).Sweep(context.Background(), req2)
	if err != nil {
		return fail(name, "restart reference: %v", err)
	}
	if !bytes.Equal(normalizeSweepJSON(resumed), normalizeSweepJSON(ref2)) {
		return fail(name, "resumed merge differs from single-process run")
	}
	return pass(name, "1/3 workers killed mid-sweep, merge byte-identical; restart resumed checkpointed shard, recomputed only the missing one")
}

// chaosClusterHungWorker hangs the first worker to reach the sweep stage:
// the hedge must duplicate the straggling shard onto the other worker and
// return the first answer long before the hang resolves.
func chaosClusterHungWorker(prof synth.Profile, seed uint64) Result {
	const name = "chaos/cluster-hung-worker"
	const n = 20_000
	const hang = 1200 * time.Millisecond

	var hungPick atomic.Int32
	hungPick.Store(-1)
	var armed atomic.Bool
	armed.Store(true)
	workers := make([]*liveServer, 2)
	for i := range workers {
		i := i
		ls, err := startServer(server.Config{
			Store: synth.NewStore(1 << 24),
			FaultHook: func(stage string) {
				if stage != "run:sweep" || !armed.Load() {
					return
				}
				if hungPick.CompareAndSwap(-1, int32(i)) {
					time.Sleep(hang)
				}
			},
		})
		if err != nil {
			return fail(name, "starting worker %d: %v", i, err)
		}
		workers[i] = ls
	}
	defer workers[0].stop()
	defer workers[1].stop()

	c := chaosCoordinator([]string{workers[0].base, workers[1].base}, "", 1, 50*time.Millisecond)
	defer c.Close()
	req := clusterSweepReq(prof.Name, seed+2, n)
	start := time.Now()
	resp, err := c.Sweep(context.Background(), req)
	elapsed := time.Since(start)
	armed.Store(false)
	if err != nil {
		return fail(name, "sweep failed under a hung worker: %v", err)
	}
	if elapsed >= hang {
		return fail(name, "answer took %v — the hedge never rescued the request from the %v hang", elapsed, hang)
	}
	if c.Metric("cluster_hedge_total") == 0 {
		return fail(name, "straggling shard was never hedged")
	}
	ref, err := client.New(workers[0].base).Sweep(context.Background(), req)
	if err != nil {
		return fail(name, "reference sweep: %v", err)
	}
	if !bytes.Equal(normalizeSweepJSON(resp), normalizeSweepJSON(ref)) {
		return fail(name, "hedged answer differs from single-process run")
	}
	return pass(name, "hedge outran a %v hang in %v; answer byte-identical", hang, elapsed.Round(time.Millisecond))
}

// chaosClusterCorruptPartial flips seeded bits in a checkpointed shard
// partial: the manifest seal must catch it, the partial is discarded and
// recomputed, and the final matrix is still exact.
func chaosClusterCorruptPartial(prof synth.Profile, seed uint64) Result {
	const name = "chaos/cluster-corrupt-partial"
	const n = 20_000
	dir, err := os.MkdirTemp("", "ibsim-chaos-cluster-")
	if err != nil {
		return fail(name, "tempdir: %v", err)
	}
	defer os.RemoveAll(dir)

	var armed atomic.Bool
	armed.Store(true)
	var allowance atomic.Int32
	workers := make([]*liveServer, 2)
	for i := range workers {
		ls, err := startServer(server.Config{
			Store: synth.NewStore(1 << 24),
			FaultHook: func(stage string) {
				if stage != "run:sweep" || !armed.Load() {
					return
				}
				if allowance.Add(1) > 1 {
					panic("chaos: injected shard failure")
				}
			},
		})
		if err != nil {
			return fail(name, "starting worker %d: %v", i, err)
		}
		workers[i] = ls
	}
	defer workers[0].stop()
	defer workers[1].stop()
	urls := []string{workers[0].base, workers[1].base}
	req := clusterSweepReq(prof.Name, seed+3, n)

	c1 := chaosCoordinator(urls, dir, 2, -1)
	defer c1.Close()
	if _, err := c1.Sweep(context.Background(), req); err == nil {
		return fail(name, "interrupted sweep reported success")
	}
	armed.Store(false)

	var partials []string
	filepath.WalkDir(filepath.Join(dir, "partials"), func(p string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(d.Name(), "shard-") {
			partials = append(partials, p)
		}
		return nil
	})
	if len(partials) == 0 {
		return fail(name, "interrupted run left no checkpointed partial to corrupt")
	}
	for _, p := range partials {
		raw, err := os.ReadFile(p)
		if err != nil {
			return fail(name, "reading partial: %v", err)
		}
		if err := os.WriteFile(p, fault.FlipBits(raw, seed^0xc02207, 3), 0o644); err != nil {
			return fail(name, "corrupting partial: %v", err)
		}
	}

	c2 := chaosCoordinator(urls, dir, 2, -1)
	defer c2.Close()
	resp, err := c2.Sweep(context.Background(), req)
	if err != nil {
		return fail(name, "sweep after corruption failed: %v", err)
	}
	if c2.Metric("cluster_checkpoint_corrupt_total") == 0 {
		return fail(name, "corrupt partial was not detected")
	}
	if c2.Metric("cluster_checkpoint_resume_total") != 0 {
		return fail(name, "coordinator resumed from a corrupt partial")
	}
	ref, err := client.New(urls[0]).Sweep(context.Background(), req)
	if err != nil {
		return fail(name, "reference sweep: %v", err)
	}
	if !bytes.Equal(normalizeSweepJSON(resp), normalizeSweepJSON(ref)) {
		return fail(name, "recomputed matrix differs from single-process run")
	}
	return pass(name, "%d corrupted partial(s) caught by the seal and recomputed exactly", len(partials))
}

// chaosClusterCachePoison flips seeded bits in the on-disk result cache:
// the content hash must reject the entry, and the sweep recomputes rather
// than serving poisoned numbers.
func chaosClusterCachePoison(prof synth.Profile, seed uint64) Result {
	const name = "chaos/cluster-cache-poison"
	const n = 20_000
	dir, err := os.MkdirTemp("", "ibsim-chaos-cluster-")
	if err != nil {
		return fail(name, "tempdir: %v", err)
	}
	defer os.RemoveAll(dir)

	workers := make([]*liveServer, 2)
	for i := range workers {
		ls, err := startServer(server.Config{Store: synth.NewStore(1 << 24)})
		if err != nil {
			return fail(name, "starting worker %d: %v", i, err)
		}
		workers[i] = ls
	}
	defer workers[0].stop()
	defer workers[1].stop()
	urls := []string{workers[0].base, workers[1].base}
	req := clusterSweepReq(prof.Name, seed+4, n)

	c1 := chaosCoordinator(urls, dir, 2, -1)
	defer c1.Close()
	if _, err := c1.Sweep(context.Background(), req); err != nil {
		return fail(name, "priming sweep failed: %v", err)
	}

	entries, err := os.ReadDir(filepath.Join(dir, "cache"))
	if err != nil || len(entries) == 0 {
		return fail(name, "no cache entry written to poison (err %v)", err)
	}
	for _, e := range entries {
		p := filepath.Join(dir, "cache", e.Name())
		raw, err := os.ReadFile(p)
		if err != nil {
			return fail(name, "reading cache entry: %v", err)
		}
		if err := os.WriteFile(p, fault.FlipBits(raw, seed^0x9015, 3), 0o644); err != nil {
			return fail(name, "poisoning cache entry: %v", err)
		}
	}

	c2 := chaosCoordinator(urls, dir, 2, -1)
	defer c2.Close()
	resp, err := c2.Sweep(context.Background(), req)
	if err != nil {
		return fail(name, "sweep against poisoned cache failed: %v", err)
	}
	if c2.Metric("cluster_cache_poison_total") == 0 {
		return fail(name, "poisoned cache entry was not detected")
	}
	if c2.Metric("cluster_cache_hit_total") != 0 {
		return fail(name, "poisoned entry was served from cache")
	}
	ref, err := client.New(urls[0]).Sweep(context.Background(), req)
	if err != nil {
		return fail(name, "reference sweep: %v", err)
	}
	if !bytes.Equal(normalizeSweepJSON(resp), normalizeSweepJSON(ref)) {
		return fail(name, "recomputed matrix differs from single-process run")
	}
	return pass(name, "poisoned cache entry rejected by content hash, matrix recomputed exactly")
}

// chaosClusterAllWorkersLost kills every worker before the sweep: the
// coordinator must degrade to its embedded local server — an explicitly
// Degraded answer with exact numbers — instead of refusing.
func chaosClusterAllWorkersLost(prof synth.Profile, seed uint64) Result {
	const name = "chaos/cluster-all-workers-lost"
	const n = 20_000

	var urls []string
	for i := 0; i < 2; i++ {
		ls, err := startServer(server.Config{Store: synth.NewStore(1 << 24)})
		if err != nil {
			return fail(name, "starting worker %d: %v", i, err)
		}
		urls = append(urls, ls.base)
		ls.hs.Close() // gone before the first request
	}

	c := cluster.New(cluster.Config{
		Workers:     urls,
		NewCaller:   fastCaller,
		Store:       synth.NewStore(1 << 24),
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
	})
	defer c.Close()
	req := clusterSweepReq(prof.Name, seed+5, n)
	resp, err := c.Sweep(context.Background(), req)
	if err != nil {
		return fail(name, "coordinator refused with all workers lost: %v", err)
	}
	if !resp.Degraded || resp.DegradedReason == "" {
		return fail(name, "local-fallback answer not marked degraded: %+v", resp.Degraded)
	}
	if c.Metric("cluster_local_fallback_total") == 0 {
		return fail(name, "local fallback counter never moved")
	}

	healthy, err := startServer(server.Config{Store: synth.NewStore(1 << 24)})
	if err != nil {
		return fail(name, "starting reference server: %v", err)
	}
	defer healthy.stop()
	ref, err := client.New(healthy.base).Sweep(context.Background(), req)
	if err != nil {
		return fail(name, "reference sweep: %v", err)
	}
	if resp.Accesses != ref.Accesses || resp.Distinct != ref.Distinct || len(resp.Cells) != len(ref.Cells) {
		return fail(name, "degraded totals differ: accesses %d vs %d", resp.Accesses, ref.Accesses)
	}
	for i := range ref.Cells {
		if resp.Cells[i].Misses != ref.Cells[i].Misses {
			return fail(name, "cell %d: local fallback %d misses, reference %d", i, resp.Cells[i].Misses, ref.Cells[i].Misses)
		}
	}
	return pass(name, "all workers lost: degraded local answer with exact miss counts")
}
