package check

import (
	"bytes"
	"fmt"
	"os"

	"ibsim/internal/cache"
	"ibsim/internal/experiments"
	"ibsim/internal/fetch"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

// ParallelVsSerial renders representative exhibits with the concurrent suite
// runners and again with the Options.Serial reference executor; the rendered
// bytes — the exact output cmd/ibstables prints — must be identical.
// Table 4 exercises mapTraces (per-workload MPI), Table 1 exercises
// mapProfiles (whole-system rows).
func ParallelVsSerial(opt Options) ([]Result, error) {
	opt = opt.withDefaults()
	expOpt := experiments.Options{Instructions: opt.Instructions, Seed: opt.Seed}
	serialOpt := expOpt
	serialOpt.Serial = true

	var harnessErr error
	var out []Result
	out = append(out, timed(func() Result {
		const name = "differential/parallel-serial-table4"
		par, err := experiments.Table4(expOpt)
		if err != nil {
			harnessErr = err
			return fail(name, "parallel Table4: %v", err)
		}
		ser, err := experiments.Table4(serialOpt)
		if err != nil {
			harnessErr = err
			return fail(name, "serial Table4: %v", err)
		}
		if par.Render() != ser.Render() {
			return fail(name, "parallel and serial Table 4 renders differ")
		}
		return pass(name, "mapTraces parallel render == serial render (%d bytes)", len(par.Render()))
	}))
	if harnessErr != nil {
		return out, harnessErr
	}
	out = append(out, timed(func() Result {
		const name = "differential/parallel-serial-table1"
		par, err := experiments.Table1(expOpt)
		if err != nil {
			harnessErr = err
			return fail(name, "parallel Table1: %v", err)
		}
		ser, err := experiments.Table1(serialOpt)
		if err != nil {
			harnessErr = err
			return fail(name, "serial Table1: %v", err)
		}
		if par.Render() != ser.Render() {
			return fail(name, "parallel and serial Table 1 renders differ")
		}
		return pass(name, "mapProfiles parallel render == serial render (%d bytes)", len(par.Render()))
	}))
	return out, harnessErr
}

// TraceRoundTrip writes a full reference stream (instructions plus data, all
// domains) through the IBSTRACE codec — both the self-describing seekable
// file path ibsim.WriteTraceFile uses and the streaming count-less path —
// reads it back, and demands the decoded stream be element-identical and
// yield bit-identical simulation results.
func TraceRoundTrip(opt Options) ([]Result, error) {
	opt = opt.withDefaults()
	p := opt.Workloads[0]

	var harnessErr error
	res := timed(func() Result {
		const name = "differential/trace-roundtrip"
		refs, err := synth.Trace(p, opt.Seed, opt.Instructions)
		if err != nil {
			harnessErr = err
			return fail(name, "trace generation: %v", err)
		}

		// Seekable file round trip (the WriteTraceFile/ReadTraceFile path).
		f, err := os.CreateTemp("", "ibscheck-*.ibstrace")
		if err != nil {
			harnessErr = err
			return fail(name, "temp file: %v", err)
		}
		defer os.Remove(f.Name())
		written, err := trace.EncodeSeeker(f, trace.NewSliceSource(refs))
		if err != nil {
			f.Close()
			return fail(name, "encode: %v", err)
		}
		if written != uint64(len(refs)) {
			f.Close()
			return fail(name, "encoded %d records, generated %d", written, len(refs))
		}
		if _, err := f.Seek(0, 0); err != nil {
			f.Close()
			harnessErr = err
			return fail(name, "rewind: %v", err)
		}
		fromFile, err := trace.Decode(f)
		f.Close()
		if err != nil {
			return fail(name, "decode: %v", err)
		}
		if r := refsDiffer(refs, fromFile); r != "" {
			return fail(name, "file round trip: %s", r)
		}

		// Streaming (count-less) round trip through a pipe-like buffer.
		pr, pw, err := pipeRoundTrip(refs)
		if err != nil {
			return fail(name, "streaming round trip: %v", err)
		}
		if pr != pw {
			return fail(name, "streaming round trip decoded %d of %d records", pr, pw)
		}

		// Simulation equivalence: replay both streams through the same fetch
		// engine and cache; results must be bit-identical.
		link := checkLink()
		cfg := baseL1()
		for _, streams := range [][2][]trace.Ref{{refs, fromFile}} {
			e1, err := fetch.NewBlocking(cfg, link, 1)
			if err != nil {
				harnessErr = err
				return fail(name, "%v", err)
			}
			e2, err := fetch.NewBlocking(cfg, link, 1)
			if err != nil {
				harnessErr = err
				return fail(name, "%v", err)
			}
			if a, b := fetch.Run(e1, streams[0]), fetch.Run(e2, streams[1]); a != b {
				return fail(name, "fetch results diverge after round trip: %+v vs %+v", a, b)
			}
			c1, c2 := cache.MustNew(cfg), cache.MustNew(cfg)
			for _, r := range streams[0] {
				c1.Access(r.Addr)
			}
			for _, r := range streams[1] {
				c2.Access(r.Addr)
			}
			if c1.Stats() != c2.Stats() {
				return fail(name, "cache stats diverge after round trip: %+v vs %+v", c1.Stats(), c2.Stats())
			}
		}
		return pass(name, "%s: %d records survived file + streaming round trips, simulations identical",
			p.Name, len(refs))
	})
	return []Result{res}, harnessErr
}

// refsDiffer compares two streams, returning "" when identical or a
// description of the first divergence.
func refsDiffer(a, b []trace.Ref) string {
	if len(a) != len(b) {
		return fmt.Sprintf("length %d != %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("record %d differs: %+v vs %+v", i, b[i], a[i])
		}
	}
	return ""
}

// pipeRoundTrip encodes refs with the streaming (count-less) writer into a
// memory buffer and decodes it back, returning decoded and written counts.
func pipeRoundTrip(refs []trace.Ref) (decoded, written int, err error) {
	var buf bytes.Buffer
	n, err := trace.Encode(&buf, trace.NewSliceSource(refs))
	if err != nil {
		return 0, int(n), err
	}
	got, err := trace.Decode(&buf)
	if err != nil {
		return len(got), int(n), err
	}
	if r := refsDiffer(refs, got); r != "" {
		return len(got), int(n), fmt.Errorf("decoded stream: %s", r)
	}
	return len(got), int(n), nil
}
