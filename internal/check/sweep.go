package check

import (
	"ibsim/internal/cache"
	"ibsim/internal/experiments"
	"ibsim/internal/fetch"
	"ibsim/internal/sweep"
	"ibsim/internal/synth"
	"ibsim/internal/xrand"
)

// SweepVsPerConfig verifies the single-pass sweep engine against the trusted
// per-configuration simulators, two ways:
//
//   - Miss-matrix property: over every workload in the suite, randomized
//     capacity × associativity grids at randomized line sizes must produce
//     miss counts bit-identical to replaying each cell through
//     fetch.NewBlocking + fetch.Run, and fetch.BlockingResult must
//     reconstruct the engine's full Result (stall cycles included) exactly.
//   - Figure differential: Figures 1, 3, and 4 rendered via the sweep path
//     must be byte-identical to the Options.PerConfig reference path — the
//     guarantee that lets the fast path replace the slow one everywhere.
func SweepVsPerConfig(opt Options) ([]Result, error) {
	opt = opt.withDefaults()
	var harnessErr error
	var out []Result

	out = append(out, timed(func() Result {
		const name = "differential/sweep-miss-matrix"
		lineSizes := []int{8, 16, 32, 64, 128}
		cellsChecked := 0
		for wi, p := range opt.Workloads {
			refs, release, err := synth.DefaultStore.Instr(p, opt.Seed, opt.Instructions)
			if err != nil {
				harnessErr = err
				return fail(name, "%s: trace generation: %v", p.Name, err)
			}
			// Deterministic per-workload geometry randomization, varied by
			// the run seed so repeated CI runs explore different grids.
			rng := xrand.New(0xB10C<<16 ^ uint64(wi)*2654435761 ^ opt.Seed)
			lineSize := lineSizes[rng.Intn(len(lineSizes))]
			grid := make([]sweep.Cell, 0, 4)
			for len(grid) < 4 {
				grid = append(grid, sweep.Cell{
					Sets:  1 << (4 + rng.Intn(8)),
					Assoc: 1 << rng.Intn(4),
				})
			}
			m, err := sweep.Run(lineSize, grid, refs)
			if err != nil {
				release()
				harnessErr = err
				return fail(name, "%s: sweep: %v", p.Name, err)
			}
			link := checkLink()
			for i, c := range grid {
				cfg := cache.Config{Size: c.Size(lineSize), LineSize: lineSize, Assoc: c.Assoc}
				e, err := fetch.NewBlocking(cfg, link, 0)
				if err != nil {
					release()
					harnessErr = err
					return fail(name, "%s: engine for %+v: %v", p.Name, cfg, err)
				}
				want := fetch.Run(e, refs)
				if m.Misses[i] != want.Misses {
					release()
					return fail(name, "%s line %d cell %+v: sweep %d misses, engine %d",
						p.Name, lineSize, c, m.Misses[i], want.Misses)
				}
				got := fetch.BlockingResult(m.Accesses, m.Misses[i], lineSize, link)
				if got != want {
					release()
					return fail(name, "%s line %d cell %+v: analytic %+v != engine %+v",
						p.Name, lineSize, c, got, want)
				}
				cellsChecked++
			}
			release()
		}
		return pass(name, "%d randomized cells across %d workloads bit-identical to per-config engines",
			cellsChecked, len(opt.Workloads))
	}))
	if harnessErr != nil {
		return out, harnessErr
	}

	out = append(out, timed(func() Result {
		const name = "differential/sweep-figures"
		sweepOpt := experiments.Options{Instructions: opt.Instructions, Seed: opt.Seed}
		refOpt := sweepOpt
		refOpt.PerConfig = true
		total := 0
		for _, fig := range []struct {
			name string
			run  func(experiments.Options) (string, error)
		}{
			{"Figure1", func(o experiments.Options) (string, error) {
				r, err := experiments.Figure1(o)
				if err != nil {
					return "", err
				}
				return r.Render(), nil
			}},
			{"Figure3", func(o experiments.Options) (string, error) {
				r, err := experiments.Figure3(o)
				if err != nil {
					return "", err
				}
				return r.Render(), nil
			}},
			{"Figure4", func(o experiments.Options) (string, error) {
				r, err := experiments.Figure4(o)
				if err != nil {
					return "", err
				}
				return r.Render(), nil
			}},
		} {
			fast, err := fig.run(sweepOpt)
			if err != nil {
				harnessErr = err
				return fail(name, "%s sweep path: %v", fig.name, err)
			}
			ref, err := fig.run(refOpt)
			if err != nil {
				harnessErr = err
				return fail(name, "%s per-config path: %v", fig.name, err)
			}
			if fast != ref {
				return fail(name, "%s: sweep and per-config renders differ", fig.name)
			}
			total += len(fast)
		}
		return pass(name, "Figures 1/3/4 sweep renders == per-config renders (%d bytes)", total)
	}))
	return out, harnessErr
}
