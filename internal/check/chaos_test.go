package check

import (
	"strings"
	"testing"
)

// The chaos suite itself: every scenario must pass against the current
// implementation, cover the six required fault classes, and be
// deterministic.
func TestRunChaosAllPass(t *testing.T) {
	opt := Options{Instructions: 50_000}
	results, err := RunChaos(opt)
	if err != nil {
		t.Fatalf("harness failure: %v", err)
	}
	want := []string{
		"chaos/truncation", "chaos/bit-flip", "chaos/short-read",
		"chaos/error-after-n", "chaos/columnar-salvage",
		"chaos/write-fault-sticky",
		"chaos/over-budget-store", "chaos/checkpoint-corrupt",
		"chaos/worker-panic",
		"chaos/server-slow-loris", "chaos/server-cancel",
		"chaos/server-over-budget", "chaos/server-sampling-tier",
		"chaos/server-panic",
		"chaos/cluster-worker-kill", "chaos/cluster-hung-worker",
		"chaos/cluster-corrupt-partial", "chaos/cluster-cache-poison",
		"chaos/cluster-all-workers-lost",
		"chaos/crash-atomicio", "chaos/crash-manifest",
		"chaos/crash-spill", "chaos/crash-cluster-checkpoint",
		"chaos/crash-cluster-cache",
	}
	if len(results) != len(want) {
		t.Fatalf("%d scenarios, want %d", len(results), len(want))
	}
	for i, r := range results {
		if r.Name != want[i] {
			t.Errorf("scenario %d = %q, want %q", i, r.Name, want[i])
		}
		if !r.Passed {
			t.Errorf("%s failed: %s", r.Name, r.Detail)
		}
		if r.Detail == "" {
			t.Errorf("%s has no detail", r.Name)
		}
	}
}

// A scenario panic is contained as a failing Result, never a crash.
func TestRunIsolatedContainsPanic(t *testing.T) {
	r := runIsolated("chaos/self", func() Result { panic("scenario bug") })
	if r.Passed {
		t.Fatal("panicking scenario passed")
	}
	if !strings.Contains(r.Detail, "scenario bug") {
		t.Fatalf("panic payload lost: %s", r.Detail)
	}
}
