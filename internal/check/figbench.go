package check

import (
	"fmt"
	"time"

	"ibsim/internal/experiments"
	"ibsim/internal/synth"
)

// FigureBench records the Figure 3 + Figure 4 sweep-engine benchmark: both
// figures rendered through the original per-configuration path and through
// the single-pass sweep path, with the byte-identity and speedup verdicts.
// cmd/ibscheck embeds it in BENCH_ibsim.json as the "figure34" stage.
type FigureBench struct {
	// Instructions is the per-workload scale both paths ran at.
	Instructions int64 `json:"instructions"`
	// PerConfigSeconds and SweepSeconds are the wall-clock times of the two
	// paths (trace generation excluded — the store is warmed first).
	PerConfigSeconds float64 `json:"perconfig_seconds"`
	SweepSeconds     float64 `json:"sweep_seconds"`
	// Speedup is PerConfigSeconds / SweepSeconds.
	Speedup float64 `json:"speedup"`
	// Identical reports whether the two paths rendered byte-identical
	// figures — a hard requirement.
	Identical bool `json:"identical"`
	// Passed is the stage verdict: identical output, and (at golden scale)
	// no more than a 20% speedup regression against the recorded baseline.
	Passed bool `json:"passed"`
	// Detail summarizes the comparison.
	Detail string `json:"detail"`
}

// figure34MinSpeedup gates speedup regressions at the pinned golden scale:
// the run fails if the measured speedup falls below 80% of the recorded
// baseline (figure34GoldenSpeedup in golden.go), i.e. a >20% regression of
// the sweep engine relative to the per-config path. The ratio-of-ratios form
// keeps the gate machine-independent.
const figure34RegressionFraction = 0.8

// RunFigureBench times Figures 3 and 4 through both execution paths and
// verifies the sweep path's output and performance. The trace store is
// warmed (and held) for the duration, so the timings isolate simulation
// cost, matching how the figures run inside a long-lived process.
func RunFigureBench(opt Options) (*FigureBench, error) {
	opt = opt.withDefaults()
	fb := &FigureBench{Instructions: opt.Instructions}

	// Hold every workload's trace so neither path pays (or is charged for)
	// generation, and the store cannot evict between the two timings.
	releases := make([]func(), 0, len(opt.Workloads))
	defer func() {
		for _, r := range releases {
			r()
		}
	}()
	for _, p := range opt.Workloads {
		_, release, err := synth.DefaultStore.Instr(p, opt.Seed, opt.Instructions)
		if err != nil {
			return nil, fmt.Errorf("check: figure bench: warming %s: %w", p.Name, err)
		}
		releases = append(releases, release)
	}

	render := func(eo experiments.Options) (string, error) {
		f3, err := experiments.Figure3(eo)
		if err != nil {
			return "", err
		}
		f4, err := experiments.Figure4(eo)
		if err != nil {
			return "", err
		}
		return f3.Render() + f4.Render(), nil
	}

	eo := experiments.Options{Instructions: opt.Instructions, Seed: opt.Seed}
	perCfg := eo
	perCfg.PerConfig = true

	start := time.Now()
	refOut, err := render(perCfg)
	if err != nil {
		return nil, fmt.Errorf("check: figure bench: per-config path: %w", err)
	}
	fb.PerConfigSeconds = time.Since(start).Seconds()

	start = time.Now()
	fastOut, err := render(eo)
	if err != nil {
		return nil, fmt.Errorf("check: figure bench: sweep path: %w", err)
	}
	fb.SweepSeconds = time.Since(start).Seconds()

	fb.Identical = fastOut == refOut
	if fb.SweepSeconds > 0 {
		fb.Speedup = fb.PerConfigSeconds / fb.SweepSeconds
	}

	goldenScale := opt.Instructions == PinnedInstructions && opt.Seed == 0
	switch {
	case !fb.Identical:
		fb.Passed = false
		fb.Detail = "sweep and per-config figure renders differ"
	case !goldenScale:
		fb.Passed = true
		fb.Detail = fmt.Sprintf("identical output, %.1fx speedup (%.2fs -> %.2fs); off golden scale, no regression gate",
			fb.Speedup, fb.PerConfigSeconds, fb.SweepSeconds)
	default:
		floor := figure34RegressionFraction * figure34GoldenSpeedup
		fb.Passed = fb.Speedup >= floor
		fb.Detail = fmt.Sprintf("identical output, %.1fx speedup (%.2fs -> %.2fs); baseline %.1fx, floor %.1fx",
			fb.Speedup, fb.PerConfigSeconds, fb.SweepSeconds, figure34GoldenSpeedup, floor)
	}
	return fb, nil
}
