package check

import (
	"context"
	"os"
	"reflect"

	"ibsim/internal/fetch"
	"ibsim/internal/replay"
	"ibsim/internal/sweep"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

// columnarCheckBlockBytes is the block size the differential checks encode
// at: small enough that even the smallest CLI-test fixture (~10K
// instructions at ~0.4 encoded bytes each) spans several blocks, so the
// block-granular loops actually iterate.
const columnarCheckBlockBytes = 512

// columnarBankSpec builds the mixed engine bank the columnar differentials
// replay: two same-geometry blocking engines (the second is analytically
// derived, exercising the dedup plan on both paths), a prefetcher, a bypass
// engine, and a stream buffer. Engines are stateful, so callers get a fresh
// bank per replay.
func columnarBank() ([]fetch.Engine, error) {
	link := checkLink()
	cfg := baseL1()
	var bank []fetch.Engine
	for _, mk := range []func() (fetch.Engine, error){
		func() (fetch.Engine, error) { return fetch.NewBlocking(cfg, link, 0) },
		func() (fetch.Engine, error) { return fetch.NewBlocking(cfg, link, 0) },
		func() (fetch.Engine, error) { return fetch.NewBlocking(cfg, link, 3) },
		func() (fetch.Engine, error) { return fetch.NewBypass(cfg, link, 3) },
		func() (fetch.Engine, error) { return fetch.NewStream(cfg, link, 6) },
	} {
		e, err := mk()
		if err != nil {
			return nil, err
		}
		bank = append(bank, e)
	}
	return bank, nil
}

// ColumnarReplay is the columnar-format differential: a workload's trace is
// written to an on-disk IBSTRACE/v3 columnar file and replayed block by
// block — through the fan-out replay driver and the sweep engine — and every
// result must be bit-identical to the in-memory path over the same trace.
// Both the mmap and the ReaderAt (sequential fallback) access modes are
// exercised, so the zero-copy path can never drift from the portable one.
func ColumnarReplay(opt Options) ([]Result, error) {
	opt = opt.withDefaults()
	p := opt.Workloads[0]
	ctx := context.Background()

	refs, err := synth.InstrTrace(p, opt.Seed, opt.Instructions)
	if err != nil {
		return nil, err
	}
	runs := trace.Compact(refs)

	f, err := os.CreateTemp("", "ibscheck-*.ibsc")
	if err != nil {
		return nil, err
	}
	path := f.Name()
	defer os.Remove(path)
	if _, err := trace.EncodeColumnarSize(f, runs, columnarCheckBlockBytes); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	cf, err := trace.OpenColumnar(path)
	if err != nil {
		return nil, err
	}
	defer cf.Close()
	mode := "sequential"
	if cf.Mapped() {
		mode = "mmap"
	}

	var harnessErr error
	var out []Result

	out = append(out, timed(func() Result {
		const name = "differential/columnar-replay"
		if cf.NumBlocks() < 2 {
			return fail(name, "fixture spans %d block(s); block iteration not exercised", cf.NumBlocks())
		}
		if cf.Refs() != int64(len(refs)) {
			return fail(name, "columnar file indexes %d refs, trace has %d", cf.Refs(), len(refs))
		}
		memBank, err := columnarBank()
		if err != nil {
			harnessErr = err
			return fail(name, "building bank: %v", err)
		}
		want, err := replay.Replay(ctx, runs, memBank)
		if err != nil {
			return fail(name, "in-memory replay: %v", err)
		}
		blkBank, err := columnarBank()
		if err != nil {
			harnessErr = err
			return fail(name, "building bank: %v", err)
		}
		got, err := replay.Blocks(ctx, cf, blkBank)
		if err != nil {
			return fail(name, "block replay (%s): %v", mode, err)
		}
		for i := range want {
			if got[i] != want[i] {
				return fail(name, "engine %d diverges over %s blocks: %+v vs %+v", i, mode, got[i], want[i])
			}
		}

		// The non-mapped ReaderAt path must agree byte for byte too.
		rf, err := os.Open(path)
		if err != nil {
			harnessErr = err
			return fail(name, "reopening fixture: %v", err)
		}
		defer rf.Close()
		fi, err := rf.Stat()
		if err != nil {
			harnessErr = err
			return fail(name, "stat fixture: %v", err)
		}
		seq, err := trace.NewColumnarReaderAt(rf, fi.Size())
		if err != nil {
			return fail(name, "ReaderAt open: %v", err)
		}
		seqBank, err := columnarBank()
		if err != nil {
			harnessErr = err
			return fail(name, "building bank: %v", err)
		}
		seqGot, err := replay.Blocks(ctx, seq, seqBank)
		if err != nil {
			return fail(name, "block replay (ReaderAt): %v", err)
		}
		for i := range want {
			if seqGot[i] != want[i] {
				return fail(name, "engine %d diverges on the ReaderAt path: %+v vs %+v", i, seqGot[i], want[i])
			}
		}
		return pass(name, "%s: %d engines x %d blocks (%s + ReaderAt) == in-memory replay, bit-exact",
			p.Name, len(want), cf.NumBlocks(), mode)
	}))
	if harnessErr != nil {
		return out, harnessErr
	}

	out = append(out, timed(func() Result {
		const name = "differential/blocks-parallel"
		serialBank, err := columnarBank()
		if err != nil {
			harnessErr = err
			return fail(name, "building bank: %v", err)
		}
		want, err := replay.Blocks(ctx, cf, serialBank)
		if err != nil {
			return fail(name, "serial block replay: %v", err)
		}
		for _, workers := range []int{2, 3, 8} {
			parBank, err := columnarBank()
			if err != nil {
				harnessErr = err
				return fail(name, "building bank: %v", err)
			}
			got, err := replay.BlocksParallel(ctx, cf, parBank, workers)
			if err != nil {
				return fail(name, "parallel block replay (workers=%d): %v", workers, err)
			}
			for i := range want {
				if got[i] != want[i] {
					return fail(name, "workers=%d engine %d diverges: %+v vs %+v", workers, i, got[i], want[i])
				}
			}
		}
		return pass(name, "%s: block-parallel fan-out == serial over %d blocks at 3 worker counts, bit-exact",
			p.Name, cf.NumBlocks())
	}))
	if harnessErr != nil {
		return out, harnessErr
	}

	out = append(out, timed(func() Result {
		const name = "differential/columnar-sweep"
		cells := []sweep.Cell{
			{Sets: 128, Assoc: 1}, {Sets: 256, Assoc: 2}, {Sets: 512, Assoc: 1}, {Sets: 1024, Assoc: 4},
		}
		pass1 := sweep.Pass{LineSize: 32, Cells: cells, CountDistinct: true}
		want, err := pass1.Run(refs)
		if err != nil {
			return fail(name, "in-memory sweep: %v", err)
		}
		got, err := pass1.RunBlocks(cf)
		if err != nil {
			return fail(name, "block sweep (%s): %v", mode, err)
		}
		if !reflect.DeepEqual(got, want) {
			return fail(name, "block sweep matrix diverges from in-memory over %s", mode)
		}

		sp := sweep.SampledPass{LineSize: 32, Cells: cells, Window: 2000, Period: 8000}
		sWant, err := sp.Run(runs)
		if err != nil {
			return fail(name, "in-memory sampled sweep: %v", err)
		}
		sGot, err := sp.RunBlocks(cf)
		if err != nil {
			return fail(name, "block sampled sweep: %v", err)
		}
		if !reflect.DeepEqual(sGot, sWant) {
			return fail(name, "sampled block sweep diverges from in-memory")
		}
		return pass(name, "%s: exact + sampled sweeps over %d blocks == in-memory, bit-exact",
			p.Name, cf.NumBlocks())
	}))
	return out, harnessErr
}
