package check

import (
	"strings"
	"testing"
)

// TestRunBenchOffGoldenScale verifies stages run, are timed, and skip value
// comparison away from the pinned scale.
func TestRunBenchOffGoldenScale(t *testing.T) {
	stages, err := RunBench(Options{Instructions: 20_000})
	if err != nil {
		t.Fatalf("RunBench: %v", err)
	}
	if len(stages) != len(benchStages()) {
		t.Fatalf("got %d stages, want %d", len(stages), len(benchStages()))
	}
	for _, s := range stages {
		if !s.Passed {
			t.Errorf("stage %s failed off golden scale: %s", s.Name, s.Detail)
		}
		if s.Seconds < 0 {
			t.Errorf("stage %s has negative wall clock", s.Name)
		}
		if s.Name != "generate/ibs-suite" && s.Name != "trace/codec" &&
			!strings.Contains(s.Detail, "off golden scale") {
			t.Errorf("stage %s compared goldens off scale: %s", s.Name, s.Detail)
		}
	}
}

// TestRunBenchGoldenScale runs the pinned configuration end to end: every
// tracked stage must land inside golden tolerance. This is the in-test twin
// of `go run ./cmd/ibscheck -n 200000`.
func TestRunBenchGoldenScale(t *testing.T) {
	if testing.Short() {
		t.Skip("pinned-scale bench runs via make check / full go test")
	}
	stages, err := RunBench(Options{})
	if err != nil {
		t.Fatalf("RunBench: %v", err)
	}
	for _, s := range stages {
		if !s.Passed {
			t.Errorf("stage %s regressed: %s", s.Name, s.Detail)
		}
	}
}

// TestGoldenCompare verifies the tolerance arithmetic accepts exact matches
// and rejects drift beyond tolerance.
func TestGoldenCompare(t *testing.T) {
	g := Golden{CPI: 0.5, MPI: 0.05}
	if ok, _ := g.compare(0.5, 0.05); !ok {
		t.Error("exact match rejected")
	}
	if ok, detail := g.compare(0.5000001, 0.05); ok {
		t.Errorf("CPI drift 2e-7 beyond 1e-9 tolerance accepted: %s", detail)
	}
	if ok, _ := g.compare(0.5, 0.050001); ok {
		t.Error("MPI drift accepted")
	}
	loose := Golden{CPI: 0.5, MPI: 0.05, RelTol: 0.01}
	if ok, _ := loose.compare(0.502, 0.0502); !ok {
		t.Error("drift within explicit 1% tolerance rejected")
	}
}

// TestGoldenLiteral checks the regeneration helper emits every tracked
// stage and no untracked ones.
func TestGoldenLiteral(t *testing.T) {
	stages := []Stage{
		{Name: "fetch/blocking", CPI: 0.25, MPI: 0.03, Detail: "cpi ..."},
		{Name: "generate/ibs-suite", Detail: "timing only (untracked)"},
	}
	lit := GoldenLiteral(stages)
	if !strings.Contains(lit, `"fetch/blocking": {CPI: 0.25, MPI: 0.03}`) {
		t.Errorf("literal missing tracked stage:\n%s", lit)
	}
	if strings.Contains(lit, "generate/ibs-suite") {
		t.Errorf("literal includes untracked stage:\n%s", lit)
	}
}

// TestGoldensMatchStageSet keeps golden.go and the stage list in sync: every
// golden key must name a pinned stage.
func TestGoldensMatchStageSet(t *testing.T) {
	names := map[string]bool{}
	for _, bs := range benchStages() {
		names[bs.name] = true
	}
	for k := range goldens {
		if !names[k] {
			t.Errorf("golden %q has no matching bench stage", k)
		}
	}
}
