package check

import (
	"testing"

	"ibsim/internal/trace"
)

func TestParallelVsSerial(t *testing.T) {
	opt := testOpt(t)
	if testing.Short() {
		opt.Instructions = 20_000
	}
	rs, err := ParallelVsSerial(opt)
	requireAllPass(t, rs, err)
}

func TestTraceRoundTrip(t *testing.T) {
	rs, err := TraceRoundTrip(testOpt(t))
	requireAllPass(t, rs, err)
}

// TestRefsDiffer exercises the comparator the round-trip check relies on.
func TestRefsDiffer(t *testing.T) {
	a := []trace.Ref{{Addr: 1}, {Addr: 2}}
	if d := refsDiffer(a, a); d != "" {
		t.Fatalf("identical slices reported different: %s", d)
	}
	if d := refsDiffer(a, a[:1]); d == "" {
		t.Fatal("length mismatch not reported")
	}
	b := []trace.Ref{{Addr: 1}, {Addr: 3}}
	if d := refsDiffer(a, b); d == "" {
		t.Fatal("element mismatch not reported")
	}
}
