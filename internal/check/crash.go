package check

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"ibsim/internal/atomicio"
	"ibsim/internal/cluster"
	"ibsim/internal/crashfs"
	"ibsim/internal/manifest"
	"ibsim/internal/synth"
)

// Crash-consistency torture scenarios (chaos/crash-*): every persistence
// surface in the repo — atomicio writes, manifest checkpoints, columnar
// spills, cluster shard checkpoints, the cluster result cache — is run
// through crashfs.Torture, which power-fails the sequence at EVERY
// durability-relevant op, materializes the post-crash disk under all three
// durability variants (journal-replay loss, torn tails, fully flushed), and
// restarts the owning subsystem against each image. The contract verified is
// the same everywhere: the reader sees a complete old artifact or a complete
// new one, resume recomputes only what is missing, corrupt partials are
// rejected typed and self-heal, and temp debris is swept, never loaded.

// crashInstr is the trace length the spill scenario generates per crash
// point — small, because the sequence reruns once per (op, variant) pair.
const crashInstr = 2_000

// chaosCrashAtomicio power-fails every op of one atomic file replacement
// over existing content: the published path must always read back as exactly
// the old bytes or exactly the new bytes, and a sweep must leave no debris.
func chaosCrashAtomicio() Result {
	const name = "chaos/crash-atomicio"
	oldData := []byte(`{"version":1,"cells":[1,2,3]}` + "\n")
	newData := []byte(`{"version":2,"cells":[4,5,6,7,8]}` + "\n")
	t := crashfs.Torture{
		Setup: func(root string) error {
			return os.WriteFile(filepath.Join(root, "artifact.json"), oldData, 0o644)
		},
		Write: func(fsys crashfs.FS, root string) error {
			return atomicio.WriteFileFS(fsys, filepath.Join(root, "artifact.json"), newData, 0o644)
		},
		Verify: func(img crashfs.Image) error {
			if _, err := atomicio.SweepTemps(img.Dir); err != nil {
				return fmt.Errorf("recovery sweep: %w", err)
			}
			entries, err := os.ReadDir(img.Dir)
			if err != nil {
				return err
			}
			for _, e := range entries {
				if e.Name() != "artifact.json" {
					return fmt.Errorf("unexpected file survived recovery: %s", e.Name())
				}
			}
			got, err := os.ReadFile(filepath.Join(img.Dir, "artifact.json"))
			if err != nil {
				return fmt.Errorf("published artifact unreadable: %w", err)
			}
			if !bytes.Equal(got, oldData) && !bytes.Equal(got, newData) {
				return fmt.Errorf("artifact is neither old nor new (%d bytes): %q", len(got), got)
			}
			return nil
		},
	}
	points, images, err := t.Run()
	if err != nil {
		return fail(name, "%v", err)
	}
	return pass(name, "%d crash points, %d images: always complete old or complete new", points, images)
}

// chaosCrashManifest power-fails every op of two manifest Puts: recovery
// must see each exhibit either exactly as written or as typed-missing (to be
// recomputed), never a blend — and an exhibit indexed later implies every
// earlier one is intact.
func chaosCrashManifest() Result {
	const name = "chaos/crash-manifest"
	params := manifest.Params{Instructions: crashInstr, Trials: 3, Seed: 11}
	outA, outB := "figure-3 exhibit body\n", "figure-4 exhibit body\n"
	t := crashfs.Torture{
		Write: func(fsys crashfs.FS, root string) error {
			m, _, err := manifest.OpenFS(fsys, root, params)
			if err != nil {
				return err
			}
			if err := m.Put("fig3", outA); err != nil {
				return err
			}
			return m.Put("fig4", outB)
		},
		Verify: func(img crashfs.Image) error {
			m, _, err := manifest.Open(img.Dir, params)
			if err != nil {
				return fmt.Errorf("reopening crashed manifest: %w", err)
			}
			check := func(nm, want string) (present bool, err error) {
				got, lerr := m.Lookup(nm)
				if lerr == nil {
					if got != want {
						return false, fmt.Errorf("exhibit %s recovered with wrong content %q", nm, got)
					}
					return true, nil
				}
				if errors.Is(lerr, manifest.ErrMissing) {
					return false, nil
				}
				return false, fmt.Errorf("exhibit %s: want content or ErrMissing, got: %w", nm, lerr)
			}
			hasA, err := check("fig3", outA)
			if err != nil {
				return err
			}
			hasB, err := check("fig4", outB)
			if err != nil {
				return err
			}
			if hasB && !hasA {
				return fmt.Errorf("later exhibit survived while an earlier completed one was lost")
			}
			// Resume must recompute only what is missing and then serve it.
			if !hasA {
				if err := m.Put("fig3", outA); err != nil {
					return fmt.Errorf("re-putting lost exhibit: %w", err)
				}
				if got, err := m.Lookup("fig3"); err != nil || got != outA {
					return fmt.Errorf("re-put exhibit not served: %v", err)
				}
			}
			return walkNoTemps(img.Dir)
		},
	}
	points, images, err := t.Run()
	if err != nil {
		return fail(name, "%v", err)
	}
	return pass(name, "%d crash points, %d images: exhibits exact or typed-missing, resume heals", points, images)
}

// chaosCrashSpill power-fails every op of a columnar spill publication: a
// store reopening the spill directory must purge every artifact a crashed
// predecessor left — temp or published, all orphans by definition — and then
// regenerate the trace cleanly.
func chaosCrashSpill(prof synth.Profile, seed uint64) Result {
	const name = "chaos/crash-spill"
	t := crashfs.Torture{
		Write: func(fsys crashfs.FS, root string) error {
			st := synth.NewStore(0)
			st.SetSpillFS(fsys)
			if err := st.SetSpillDir(filepath.Join(root, "spill")); err != nil {
				return err
			}
			_, release, err := st.Columnar(context.Background(), prof, seed, crashInstr)
			if err != nil {
				return err
			}
			release()
			return nil
		},
		Verify: func(img crashfs.Image) error {
			dir := filepath.Join(img.Dir, "spill")
			st := synth.NewStore(0)
			if err := st.SetSpillDir(dir); err != nil {
				return fmt.Errorf("reopening crashed spill dir: %w", err)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				return err
			}
			for _, e := range entries {
				return fmt.Errorf("stale spill artifact survived reopen: %s", e.Name())
			}
			cf, release, err := st.Columnar(context.Background(), prof, seed, crashInstr)
			if err != nil {
				return fmt.Errorf("regenerating after crash: %w", err)
			}
			if cf.Refs() != crashInstr {
				release()
				return fmt.Errorf("regenerated spill holds %d refs, want %d", cf.Refs(), crashInstr)
			}
			release()
			return nil
		},
	}
	points, images, err := t.Run()
	if err != nil {
		return fail(name, "%v", err)
	}
	return pass(name, "%d crash points, %d images: orphans purged, regeneration clean", points, images)
}

// chaosCrashClusterCheckpoint power-fails every op of a shard-checkpoint
// save (plan + sealed partial): a restarted coordinator must load exactly
// what was saved or nothing, count and delete corrupt partials, and sweep
// temp debris on open.
func chaosCrashClusterCheckpoint() Result {
	const name = "chaos/crash-cluster-checkpoint"
	t := crashfs.Torture{
		Write:  cluster.CrashCheckpointWrite,
		Verify: func(img crashfs.Image) error { return cluster.CrashCheckpointVerify(img.Dir) },
	}
	points, images, err := t.Run()
	if err != nil {
		return fail(name, "%v", err)
	}
	return pass(name, "%d crash points, %d images: partials exact or rejected+deleted", points, images)
}

// chaosCrashClusterCache power-fails every op of a result-cache store: a
// restarted coordinator must serve exactly the stored entry or recompute,
// and a poisoned file is counted and deleted, never served.
func chaosCrashClusterCache() Result {
	const name = "chaos/crash-cluster-cache"
	t := crashfs.Torture{
		Write:  cluster.CrashCacheWrite,
		Verify: func(img crashfs.Image) error { return cluster.CrashCacheVerify(img.Dir) },
	}
	points, images, err := t.Run()
	if err != nil {
		return fail(name, "%v", err)
	}
	return pass(name, "%d crash points, %d images: entries exact or poisoned+deleted", points, images)
}

// walkNoTemps fails if any atomicio temp file survives under root after the
// owning subsystem's recovery ran.
func walkNoTemps(root string) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && atomicio.IsTemp(d.Name()) {
			return fmt.Errorf("temp debris survived recovery: %s", path)
		}
		return nil
	})
}
