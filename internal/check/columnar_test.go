package check

import (
	"strings"
	"testing"

	"ibsim/internal/synth"
)

// The columnar differentials must hold at a sub-golden scale that still
// spans many blocks.
func TestColumnarReplayPasses(t *testing.T) {
	results, err := ColumnarReplay(Options{Instructions: 60_000})
	if err != nil {
		t.Fatalf("harness failure: %v", err)
	}
	want := []string{"differential/columnar-replay", "differential/blocks-parallel", "differential/columnar-sweep"}
	if len(results) != len(want) {
		t.Fatalf("%d results, want %d", len(results), len(want))
	}
	for i, r := range results {
		if r.Name != want[i] {
			t.Errorf("result %d = %q, want %q", i, r.Name, want[i])
		}
		if !r.Passed {
			t.Errorf("%s failed: %s", r.Name, r.Detail)
		}
	}
}

// The chaos salvage scenario in isolation (it also runs inside RunChaos).
func TestChaosColumnarSalvage(t *testing.T) {
	opt := Options{Instructions: 50_000}.withDefaults()
	refs, err := synth.InstrTrace(opt.Workloads[0], opt.Seed, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	r := chaosColumnarSalvage(refs)
	if !r.Passed {
		t.Fatalf("%s: %s", r.Name, r.Detail)
	}
	if !strings.Contains(r.Detail, "prefix") {
		t.Fatalf("detail does not describe the truncation salvage: %s", r.Detail)
	}
}

// The bench must prove the whole contract off golden scale: the capped
// store rejects the in-memory tiers, results are identical, and heap growth
// during the disk replay stays under the budget the trace exceeds tenfold.
func TestRunColumnarBench(t *testing.T) {
	cb, err := RunColumnarBench(Options{Instructions: 120_000})
	if err != nil {
		t.Fatalf("harness failure: %v", err)
	}
	if !cb.OverBudget {
		t.Error("capped store admitted the in-memory tiers; budget not binding")
	}
	if !cb.Identical {
		t.Error("block and in-memory results differ")
	}
	if !cb.FlatRSS {
		t.Errorf("heap grew %d bytes, budget %d", cb.HeapGrowthBytes, cb.BudgetBytes)
	}
	if cb.TraceBytes != 10*cb.BudgetBytes {
		t.Errorf("trace %d bytes is not 10x the %d budget", cb.TraceBytes, cb.BudgetBytes)
	}
	if cb.Blocks < 8 {
		t.Errorf("bench file spans only %d blocks", cb.Blocks)
	}
	if !cb.Passed {
		t.Errorf("bench failed off golden scale: %s", cb.Detail)
	}
}
