package check

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"ibsim/internal/fault"
	"ibsim/internal/server"
	"ibsim/internal/synth"
)

// The server chaos scenarios drive a live in-process ibsimd service
// (internal/server) through its failure modes — a slow-loris request body,
// mid-request client cancellation, a store over its hard budget, and a
// handler panic — and assert the hardened-service contract: the daemon
// never crashes, failures surface as structured errors or explicitly
// degraded responses, and the server keeps answering afterwards.

// liveServer is one in-process server on a loopback listener.
type liveServer struct {
	srv  *server.Server
	hs   *http.Server
	base string
	done chan error
}

// startServer boots an in-process server. The caller must call stop.
func startServer(cfg server.Config) (*liveServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	srv := server.New(cfg)
	hs := &http.Server{
		Handler: srv.Handler(),
		// Tight read deadline so a slow-loris peer is cut off quickly.
		ReadTimeout:       500 * time.Millisecond,
		ReadHeaderTimeout: 500 * time.Millisecond,
	}
	ls := &liveServer{srv: srv, hs: hs, base: "http://" + ln.Addr().String(), done: make(chan error, 1)}
	go func() { ls.done <- hs.Serve(ln) }()
	return ls, nil
}

func (ls *liveServer) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ls.hs.Shutdown(ctx)
	<-ls.done
}

// sweepBody builds a small sweep request body.
func sweepBody(workload string, n int64) []byte {
	body, _ := json.Marshal(server.SweepRequest{
		Workload:     workload,
		Instructions: n,
		LineSize:     32,
		Cells:        []server.CellSpec{{Sets: 64, Assoc: 1}, {Sets: 256, Assoc: 2}},
	})
	return body
}

// postSweep posts body to the server and returns status plus decoded
// response or error envelope.
func postSweep(base string, body []byte) (int, *server.SweepResponse, *server.ErrorBody, error) {
	resp, err := http.Post(base+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, nil, err
	}
	if resp.StatusCode == http.StatusOK {
		var sr server.SweepResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			return resp.StatusCode, nil, nil, fmt.Errorf("bad 200 body %q: %w", raw, err)
		}
		return resp.StatusCode, &sr, nil, nil
	}
	var eb server.ErrorBody
	if err := json.Unmarshal(raw, &eb); err != nil {
		return resp.StatusCode, nil, nil, fmt.Errorf("unstructured %d body %q", resp.StatusCode, raw)
	}
	return resp.StatusCode, nil, &eb, nil
}

// chaosServerSlowLoris feeds the server a request body that dribbles in a
// byte at a time (fault.Plan{ShortIO, Delay}): the read deadline must cut
// the peer off without taking the daemon down, and a well-behaved request
// must succeed immediately afterwards.
func chaosServerSlowLoris(prof synth.Profile, seed uint64) Result {
	const name = "chaos/server-slow-loris"
	ls, err := startServer(server.Config{Store: synth.NewStore(1 << 24)})
	if err != nil {
		return fail(name, "%v", err)
	}
	defer ls.stop()

	body := sweepBody(prof.Name, 20_000)
	// ~1 byte per 25ms against a 500ms read deadline: the server must
	// sever the connection long before the body completes.
	loris := fault.NewReader(bytes.NewReader(body), fault.Plan{
		ShortIO: true, Delay: 25 * time.Millisecond, Seed: seed,
	})
	req, err := http.NewRequest(http.MethodPost, ls.base+"/v1/sweep", io.NopCloser(loris))
	if err != nil {
		return fail(name, "building request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return fail(name, "slow-loris body produced a 200")
		}
	}
	// Either outcome — severed connection (err != nil) or an HTTP error
	// status — is acceptable; crashing or hanging is not. Prove the
	// server survived by completing a normal request.
	code, sr, eb, err := postSweep(ls.base, body)
	if err != nil {
		return fail(name, "server unreachable after slow-loris: %v", err)
	}
	if code != http.StatusOK || sr == nil {
		return fail(name, "healthy request after slow-loris = %d (%+v)", code, eb)
	}
	return pass(name, "slow peer cut off; healthy request then returned %d cells", len(sr.Cells))
}

// chaosServerCancel cancels a request mid-simulation: the server must
// absorb the disconnect (no crash, capacity released) and keep serving.
func chaosServerCancel(prof synth.Profile, seed uint64) Result {
	const name = "chaos/server-cancel"
	entered := make(chan struct{}, 8)
	var inHook atomic.Bool
	ls, err := startServer(server.Config{
		Store: synth.NewStore(1 << 24),
		FaultHook: func(string) {
			if inHook.CompareAndSwap(false, true) {
				entered <- struct{}{}
				// Hold the request long enough for the client to vanish.
				time.Sleep(150 * time.Millisecond)
			}
		},
	})
	if err != nil {
		return fail(name, "%v", err)
	}
	defer ls.stop()

	body := sweepBody(prof.Name, 20_000)
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ls.base+"/v1/sweep", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		cancel()
		return fail(name, "request never reached the simulation stage")
	}
	cancel() // client walks away mid-flight
	if err := <-errc; err == nil {
		return fail(name, "cancelled request completed as if nothing happened")
	}

	// The server must have survived and released the admitted capacity.
	deadline := time.Now().Add(10 * time.Second)
	for ls.srv.InflightBytes() != 0 {
		if time.Now().After(deadline) {
			return fail(name, "admitted capacity never released after cancellation: %d bytes", ls.srv.InflightBytes())
		}
		time.Sleep(5 * time.Millisecond)
	}
	code, sr, eb, err := postSweep(ls.base, body)
	if err != nil || code != http.StatusOK || sr == nil {
		return fail(name, "request after cancellation = %d (%+v, err %v)", code, eb, err)
	}
	return pass(name, "mid-flight disconnect absorbed, capacity released, server kept serving")
}

// chaosServerOverBudget runs the server against a store whose hard budget
// rejects every materialization: responses must arrive degraded — explicit
// marker, explanation — and numerically identical to the materialized path.
func chaosServerOverBudget(prof synth.Profile, seed uint64) Result {
	const name = "chaos/server-over-budget"
	degraded, err := startServer(server.Config{Store: synth.NewStoreLimits(0, 64)})
	if err != nil {
		return fail(name, "%v", err)
	}
	defer degraded.stop()
	healthy, err := startServer(server.Config{Store: synth.NewStore(1 << 24)})
	if err != nil {
		return fail(name, "%v", err)
	}
	defer healthy.stop()

	body := sweepBody(prof.Name, 20_000)
	code, dresp, eb, err := postSweep(degraded.base, body)
	if err != nil || code != http.StatusOK || dresp == nil {
		return fail(name, "over-budget sweep = %d (%+v, err %v), want degraded 200", code, eb, err)
	}
	if !dresp.Degraded || dresp.DegradedReason == "" {
		return fail(name, "over-budget response not marked degraded: %+v", dresp)
	}
	code, href, _, err := postSweep(healthy.base, body)
	if err != nil || code != http.StatusOK || href == nil {
		return fail(name, "healthy sweep failed: %d, %v", code, err)
	}
	if href.Degraded {
		return fail(name, "healthy server answered degraded")
	}
	if len(dresp.Cells) != len(href.Cells) {
		return fail(name, "cell counts differ: %d vs %d", len(dresp.Cells), len(href.Cells))
	}
	for i := range href.Cells {
		if dresp.Cells[i].Misses != href.Cells[i].Misses {
			return fail(name, "cell %d: streamed %d misses, materialized %d", i, dresp.Cells[i].Misses, href.Cells[i].Misses)
		}
	}
	return pass(name, "over-budget store degraded to streaming with identical miss counts")
}

// chaosServerPanic injects a panic into the request path: the response
// must be a structured 500 (kind "panic") and the daemon must keep
// serving.
func chaosServerPanic(prof synth.Profile, seed uint64) Result {
	const name = "chaos/server-panic"
	var arm atomic.Bool
	arm.Store(true)
	ls, err := startServer(server.Config{
		Store: synth.NewStore(1 << 24),
		FaultHook: func(string) {
			if arm.CompareAndSwap(true, false) {
				panic("chaos: injected handler panic")
			}
		},
	})
	if err != nil {
		return fail(name, "%v", err)
	}
	defer ls.stop()

	body := sweepBody(prof.Name, 20_000)
	code, _, eb, err := postSweep(ls.base, body)
	if err != nil {
		return fail(name, "panicking request severed the connection: %v", err)
	}
	if code != http.StatusInternalServerError || eb == nil {
		return fail(name, "panic surfaced as %d, want structured 500", code)
	}
	if eb.Error.Kind != "panic" {
		return fail(name, "error kind = %q, want \"panic\"", eb.Error.Kind)
	}
	if !strings.Contains(eb.Error.Message, "injected handler panic") {
		return fail(name, "panic payload lost: %q", eb.Error.Message)
	}
	code, sr, _, err := postSweep(ls.base, body)
	if err != nil || code != http.StatusOK || sr == nil {
		return fail(name, "request after panic = %d (err %v), want 200", code, err)
	}
	return pass(name, "handler panic isolated to a structured 500; daemon kept serving")
}

// chaosServerSamplingTier proves the degradation ladder's ORDER: a store
// that cannot hold the ref trace but can hold its run compaction must answer
// from the sampling tier (degraded, confidence intervals attached, estimates
// near the exact answer), and only a store too small for even the runs may
// fall to the streaming tier below it.
func chaosServerSamplingTier(prof synth.Profile, seed uint64) Result {
	const name = "chaos/server-sampling-tier"
	const n = 20_000
	// Budgets bracketing the run compaction: refs need n*16 = 320 KB, the
	// compacted runs a few tens of KB.
	mid, err := startServer(server.Config{Store: synth.NewStoreLimits(0, 1<<17)})
	if err != nil {
		return fail(name, "%v", err)
	}
	defer mid.stop()
	tiny, err := startServer(server.Config{Store: synth.NewStoreLimits(0, 1<<10)})
	if err != nil {
		return fail(name, "%v", err)
	}
	defer tiny.stop()
	healthy, err := startServer(server.Config{Store: synth.NewStore(1 << 24)})
	if err != nil {
		return fail(name, "%v", err)
	}
	defer healthy.stop()

	body := sweepBody(prof.Name, n)
	code, exact, _, err := postSweep(healthy.base, body)
	if err != nil || code != http.StatusOK || exact == nil {
		return fail(name, "healthy sweep = %d (err %v), want 200", code, err)
	}

	code, sresp, eb, err := postSweep(mid.base, body)
	if err != nil || code != http.StatusOK || sresp == nil {
		return fail(name, "mid-budget sweep = %d (%+v, err %v), want sampled 200", code, eb, err)
	}
	switch {
	case !sresp.Degraded:
		return fail(name, "sampling-tier answer not marked degraded: %+v", sresp)
	case sresp.Sampling == nil:
		return fail(name, "mid-budget answer has no sampling block (reason %q) — tier skipped", sresp.DegradedReason)
	case sresp.Sampling.CI95 <= 0 || sresp.Sampling.Coverage <= 0 || sresp.Sampling.Coverage >= 1:
		return fail(name, "sampling block not populated: %+v", sresp.Sampling)
	case !strings.Contains(sresp.DegradedReason, "sampled"):
		return fail(name, "reason %q does not say the answer is sampled", sresp.DegradedReason)
	}
	for i, c := range sresp.Cells {
		exactMPI := float64(exact.Cells[i].Misses) / float64(exact.Accesses)
		tol := 3 * c.CI95
		if fl := 0.5 * exactMPI; tol < fl {
			tol = fl
		}
		if d := c.MPI - exactMPI; d < -tol || d > tol {
			return fail(name, "cell %d: sampled MPI %v vs exact %v beyond tolerance %v", i, c.MPI, exactMPI, tol)
		}
	}

	code, tresp, eb, err := postSweep(tiny.base, body)
	if err != nil || code != http.StatusOK || tresp == nil {
		return fail(name, "tiny-budget sweep = %d (%+v, err %v), want streamed 200", code, eb, err)
	}
	if tresp.Sampling != nil {
		return fail(name, "tiny-budget store sampled; runs over budget must stream exactly")
	}
	if !tresp.Degraded || !strings.Contains(tresp.DegradedReason, "stream") {
		return fail(name, "tiny-budget reason %q, want streaming fallback", tresp.DegradedReason)
	}
	for i := range exact.Cells {
		if tresp.Cells[i].Misses != exact.Cells[i].Misses {
			return fail(name, "streamed cell %d: %d misses, exact %d", i, tresp.Cells[i].Misses, exact.Cells[i].Misses)
		}
	}
	return pass(name, "sampling tier engaged above streaming: sampled at coverage %.3f with CI95 %.2e, streamed exactly below it", sresp.Sampling.Coverage, sresp.Sampling.CI95)
}
