package check

import (
	"bytes"
	"fmt"
	"math"
	"time"

	"ibsim/internal/cache"
	"ibsim/internal/cpi"
	"ibsim/internal/fetch"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

// Stage is one timed benchmark-regression stage.
type Stage struct {
	// Name identifies the stage, e.g. "fetch/stream6".
	Name string `json:"name"`
	// Seconds is the stage's wall-clock time.
	Seconds float64 `json:"seconds"`
	// CPI is the stage's suite-mean CPIinstr (0 when not applicable).
	CPI float64 `json:"cpi,omitempty"`
	// MPI is the stage's suite-mean misses per instruction (0 when not
	// applicable).
	MPI float64 `json:"mpi,omitempty"`
	// Passed reports whether the stage's values landed within golden
	// tolerance (always true for untracked stages and off-golden scales).
	Passed bool `json:"passed"`
	// Detail explains the verdict: values vs goldens, or why no comparison
	// was made.
	Detail string `json:"detail,omitempty"`
}

// Report is the machine-readable output cmd/ibscheck writes to
// BENCH_ibsim.json: the perf trajectory of the simulators, one record per
// run.
type Report struct {
	// Schema versions the JSON layout.
	Schema string `json:"schema"`
	// Instructions and Seed echo the run's scale.
	Instructions int64  `json:"instructions"`
	Seed         uint64 `json:"seed"`
	// GoldenScale reports whether the run matched the pinned scale the
	// committed goldens were measured at (Instructions ==
	// PinnedInstructions, Seed == 0), enabling value comparison.
	GoldenScale bool `json:"golden_scale"`
	// Checks holds the invariant and differential verdicts.
	Checks []Result `json:"checks"`
	// Stages holds the timed benchmark stages.
	Stages []Stage `json:"stages"`
	// Figure34 records the Figure 3+4 sweep-engine benchmark: wall-clock of
	// both execution paths, the speedup, and the regression verdict.
	Figure34 *FigureBench `json:"figure34,omitempty"`
	// Tables records the Tables 5-8 + Figures 6/7 fan-out replay benchmark,
	// in the same both-paths form as Figure34.
	Tables *TablesBench `json:"tables,omitempty"`
	// Sampling records the sampled-sweep benchmark: exact vs 1/16
	// set-sampled grid sweep, with speedup, accuracy, and CI-calibration
	// verdicts.
	Sampling *SamplingBench `json:"sampling,omitempty"`
	// Columnar records the zero-copy block-replay benchmark: a trace 10x the
	// RAM budget replayed from its on-disk columnar file, with identity,
	// flat-RSS, and relative-throughput verdicts.
	Columnar *ColumnarBench `json:"columnar,omitempty"`
	// Seek records the checkpoint-seek streaming benchmark: full streaming
	// regeneration vs checkpoint seek at 1/16 window coverage on an
	// over-budget store, with speedup and bit-identity verdicts.
	Seek *SeekBench `json:"seek,omitempty"`
	// Passed is the run's overall verdict.
	Passed bool `json:"passed"`
	// TotalSeconds is the whole run's wall-clock time.
	TotalSeconds float64 `json:"total_seconds"`
}

// stageValues is what one bench stage computes.
type stageValues struct {
	cpi, mpi float64
	tracked  bool // whether the stage has golden values to compare
}

// benchStage pairs a pinned simulation with its runner.
type benchStage struct {
	name string
	run  func(opt Options) (stageValues, error)
}

// benchStages is the pinned stage set, in execution order. Names are stable:
// BENCH_ibsim.json consumers and the goldens key on them.
func benchStages() []benchStage {
	return []benchStage{
		{"generate/ibs-suite", stageGenerate},
		{"cache/base-l1", stageBaseCache},
		{"fetch/blocking", engineStage(func(cfg cache.Config) (fetch.Engine, error) {
			return fetch.NewBlocking(cfg, checkLink(), 0)
		})},
		{"fetch/prefetch3", engineStage(func(cfg cache.Config) (fetch.Engine, error) {
			return fetch.NewBlocking(cfg, checkLink(), 3)
		})},
		{"fetch/bypass3", engineStage(func(cfg cache.Config) (fetch.Engine, error) {
			return fetch.NewBypass(cfg, checkLink(), 3)
		})},
		{"fetch/stream6", engineStage(func(cfg cache.Config) (fetch.Engine, error) {
			return fetch.NewStream(cfg, checkLink(), 6)
		})},
		{"system/gs", stageSystemGS},
		{"trace/codec", stageTraceCodec},
	}
}

// stageGenerate times suite generation and warms the shared trace store:
// every later stage (and any experiment run in the same process) acquires
// these traces instead of regenerating them. It reports no CPI/MPI.
func stageGenerate(opt Options) (stageValues, error) {
	for _, p := range opt.Workloads {
		_, release, err := synth.DefaultStore.Instr(p, opt.Seed, opt.Instructions)
		if err != nil {
			return stageValues{}, err
		}
		release()
	}
	return stageValues{}, nil
}

// stageBaseCache reports the suite-mean miss ratio of the paper's base L1.
func stageBaseCache(opt Options) (stageValues, error) {
	var mean float64
	for _, p := range opt.Workloads {
		refs, release, err := synth.DefaultStore.Instr(p, opt.Seed, opt.Instructions)
		if err != nil {
			return stageValues{}, err
		}
		c, err := cache.New(baseL1())
		if err != nil {
			release()
			return stageValues{}, err
		}
		for _, r := range refs {
			c.Access(r.Addr)
		}
		release()
		mean += c.Stats().MissRatio() / float64(len(opt.Workloads))
	}
	return stageValues{mpi: mean, tracked: true}, nil
}

// engineStage builds a suite-mean CPI/MPI stage for one fetch engine. Traces
// come from the shared store (warmed by stageGenerate), so the stage times
// engine simulation, not generation; fetch.Run over the materialized slice
// returns results bit-identical to the former streaming path — the
// StreamingEquality invariant pins that — so the committed goldens are
// unchanged.
func engineStage(mk func(cfg cache.Config) (fetch.Engine, error)) func(opt Options) (stageValues, error) {
	return func(opt Options) (stageValues, error) {
		var v stageValues
		for _, p := range opt.Workloads {
			refs, release, err := synth.DefaultStore.Instr(p, opt.Seed, opt.Instructions)
			if err != nil {
				return stageValues{}, err
			}
			e, err := mk(baseL1())
			if err != nil {
				release()
				return stageValues{}, err
			}
			res := fetch.Run(e, refs)
			release()
			v.cpi += res.CPIinstr() / float64(len(opt.Workloads))
			v.mpi += res.MPI() / float64(len(opt.Workloads))
		}
		v.tracked = true
		return v, nil
	}
}

// stageSystemGS runs the gs workload (with data references) through the
// DECstation 3100 whole-system model; CPI is the total memory CPI.
func stageSystemGS(opt Options) (stageValues, error) {
	p, err := synth.Lookup("gs")
	if err != nil {
		return stageValues{}, err
	}
	g, err := synth.NewGenerator(p, opt.Seed)
	if err != nil {
		return stageValues{}, err
	}
	s := cpi.NewSystem()
	for s.Instructions() < opt.Instructions {
		r, _ := g.Next()
		s.Process(r)
	}
	return stageValues{cpi: s.Components().Total(), tracked: true}, nil
}

// stageTraceCodec times an in-memory encode+decode round trip of a full
// (instructions + data) gs trace; untracked, timing only.
func stageTraceCodec(opt Options) (stageValues, error) {
	p, err := synth.Lookup("gs")
	if err != nil {
		return stageValues{}, err
	}
	refs, err := synth.Trace(p, opt.Seed, opt.Instructions)
	if err != nil {
		return stageValues{}, err
	}
	var buf bytes.Buffer
	if _, err := trace.Encode(&buf, trace.NewSliceSource(refs)); err != nil {
		return stageValues{}, err
	}
	got, err := trace.Decode(&buf)
	if err != nil {
		return stageValues{}, err
	}
	if len(got) != len(refs) {
		return stageValues{}, fmt.Errorf("check: codec stage decoded %d of %d records", len(got), len(refs))
	}
	return stageValues{}, nil
}

// RunBench executes the pinned stage set, timing each and comparing CPI/MPI
// against the committed goldens when the run is at golden scale. A non-nil
// error is a harness failure; regressions are reported in the stages.
func RunBench(opt Options) ([]Stage, error) {
	opt = opt.withDefaults()
	goldenScale := opt.Instructions == PinnedInstructions && opt.Seed == 0
	var out []Stage
	for _, bs := range benchStages() {
		start := time.Now()
		v, err := bs.run(opt)
		if err != nil {
			return out, fmt.Errorf("check: bench stage %s: %w", bs.name, err)
		}
		st := Stage{
			Name:    bs.name,
			Seconds: time.Since(start).Seconds(),
			CPI:     v.cpi,
			MPI:     v.mpi,
			Passed:  true,
		}
		switch {
		case !v.tracked:
			st.Detail = "timing only (untracked)"
		case !goldenScale:
			st.Detail = "off golden scale, values not compared"
		default:
			g, ok := goldens[bs.name]
			if !ok {
				st.Detail = "no golden committed"
				break
			}
			st.Passed, st.Detail = g.compare(v.cpi, v.mpi)
		}
		out = append(out, st)
	}
	return out, nil
}

// Golden is a committed reference value pair with an explicit tolerance.
type Golden struct {
	// CPI and MPI are the expected suite-mean values at the pinned scale.
	CPI float64
	MPI float64
	// RelTol is the allowed relative deviation. The simulators are fully
	// deterministic, so the default is tight; it exists to absorb benign
	// floating-point reassociation in refactors, not behavior changes.
	RelTol float64
}

// compare checks got values against the golden.
func (g Golden) compare(gotCPI, gotMPI float64) (bool, string) {
	tol := g.RelTol
	if tol <= 0 {
		tol = defaultRelTol
	}
	ok := withinRel(gotCPI, g.CPI, tol) && withinRel(gotMPI, g.MPI, tol)
	detail := fmt.Sprintf("cpi %.6f (golden %.6f), mpi %.6f (golden %.6f), tol %.1e",
		gotCPI, g.CPI, gotMPI, g.MPI, tol)
	return ok, detail
}

// withinRel reports |got-want| <= tol * max(|want|, floor).
func withinRel(got, want, tol float64) bool {
	scale := math.Abs(want)
	if scale < 1e-12 {
		scale = 1e-12
	}
	return math.Abs(got-want) <= tol*scale
}

// GoldenLiteral renders the measured stage values as the Go literal to paste
// into golden.go — the documented regeneration path when a PR deliberately
// changes simulator behavior (see EXPERIMENTS.md).
func GoldenLiteral(stages []Stage) string {
	var b bytes.Buffer
	b.WriteString("var goldens = map[string]Golden{\n")
	for _, s := range stages {
		if s.Detail == "timing only (untracked)" {
			continue
		}
		fmt.Fprintf(&b, "\t%q: {CPI: %v, MPI: %v},\n", s.Name, s.CPI, s.MPI)
	}
	b.WriteString("}\n")
	return b.String()
}
