package check

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"

	"ibsim/internal/fetch"
	"ibsim/internal/replay"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

// ColumnarBench records the zero-copy block-replay benchmark: a workload
// whose expanded trace is ten times the synth store's hard RAM budget is
// replayed from its on-disk columnar file, block by block, against the
// in-memory fan-out path over the same trace. cmd/ibscheck embeds it in
// BENCH_ibsim.json as the "columnar" stage — this is where the format's
// O(1)-memory, near-parity-throughput promise is pinned against regression.
type ColumnarBench struct {
	// Instructions is the trace length both paths replayed.
	Instructions int64 `json:"instructions"`
	// TraceBytes is what materializing the trace as refs would cost in RAM
	// (the store charges 16 bytes per ref); BudgetBytes is the hard budget
	// the bench store was capped at (TraceBytes/10); FileBytes is the
	// columnar file's actual on-disk size.
	TraceBytes  int64 `json:"trace_bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
	FileBytes   int64 `json:"file_bytes"`
	// Blocks is the columnar file's block count; Mapped reports whether the
	// replay ran zero-copy over an mmap (false: ReaderAt fallback).
	Blocks int  `json:"blocks"`
	Mapped bool `json:"mapped"`
	// InMemorySeconds and BlockSeconds are the wall-clock times of the
	// materialized-runs and block-granular replays of the same engine bank
	// (minimum over columnarBenchIters interleaved timings).
	InMemorySeconds float64 `json:"inmemory_seconds"`
	BlockSeconds    float64 `json:"block_seconds"`
	// Ratio is InMemorySeconds / BlockSeconds: the block path's relative
	// throughput (1.0 = parity with the in-memory path).
	Ratio float64 `json:"ratio"`
	// ThroughputMBs is the block path's expanded-trace bandwidth
	// (TraceBytes / BlockSeconds, in MB/s).
	ThroughputMBs float64 `json:"throughput_mbs"`
	// HeapGrowthBytes is the peak HeapInuse growth observed while replaying
	// from disk; FlatRSS reports it stayed under the RAM budget the trace
	// itself exceeds tenfold.
	HeapGrowthBytes int64 `json:"heap_growth_bytes"`
	FlatRSS         bool  `json:"flat_rss"`
	// OverBudget confirms the capped store rejects the in-memory tiers for
	// this trace (the scenario the columnar tier exists for) while admitting
	// the columnar file.
	OverBudget bool `json:"over_budget"`
	// Identical reports both paths produced bit-identical engine results — a
	// hard requirement.
	Identical bool `json:"identical"`
	// Passed is the stage verdict: identity, flat RSS, and budget behavior
	// always, plus (at golden scale) no more than a 20% relative-throughput
	// regression against the recorded baseline.
	Passed bool `json:"passed"`
	// Detail summarizes the comparison.
	Detail string `json:"detail"`
}

// columnarRegressionFraction gates relative-throughput regressions at the
// pinned golden scale, in the same ratio-of-ratios form as the other bench
// stages: fail if the measured ratio falls below 80% of
// columnarGoldenRatio.
const columnarRegressionFraction = 0.8

// columnarBenchIters is how many times each path is timed (interleaved);
// the reported time per path is the minimum.
const columnarBenchIters = 2

// columnarBenchBlockBytes is the bench file's block size: small enough that
// the pinned-scale trace (~0.4 encoded bytes per instruction) spans dozens
// of blocks — so the per-block loop and the RSS probe are actually
// exercised — large enough that frame overhead stays negligible.
const columnarBenchBlockBytes = 2048

// columnarRefBytes is what the synth store charges per materialized
// trace.Ref, mirrored here to size the bench budget.
const columnarRefBytes = 16

// RunColumnarBench builds a columnar trace whose expanded form is 10x a
// hard RAM budget, proves the capped store rejects the in-memory tiers but
// admits the file, then replays an engine bank through both the in-memory
// and the block-granular drivers: results must be bit-identical, heap
// growth during the disk replay must stay under the budget, and the block
// path's throughput is gated against the recorded baseline.
func RunColumnarBench(opt Options) (*ColumnarBench, error) {
	opt = opt.withDefaults()
	p := opt.Workloads[0]
	cb := &ColumnarBench{Instructions: opt.Instructions}
	ctx := context.Background()

	refs, err := synth.InstrTrace(p, opt.Seed, opt.Instructions)
	if err != nil {
		return nil, fmt.Errorf("check: columnar bench: generating %s: %w", p.Name, err)
	}
	runs := trace.Compact(refs)
	refs = nil
	cb.TraceBytes = opt.Instructions * columnarRefBytes
	cb.BudgetBytes = cb.TraceBytes / 10

	// The capped store must reject both in-memory tiers for this trace and
	// admit its columnar file — the admission ordering the service's
	// columnar-disk degradation tier stands on.
	capped := synth.NewStoreLimits(0, cb.BudgetBytes)
	_, relRefs, errRefs := capped.Instr(p, opt.Seed, opt.Instructions)
	if errRefs == nil {
		relRefs()
	}
	_, relRuns, errRuns := capped.RunsOnly(ctx, p, opt.Seed, opt.Instructions)
	if errRuns == nil {
		relRuns()
	}
	cf, release, err := capped.Columnar(ctx, p, opt.Seed, opt.Instructions)
	if err != nil {
		return nil, fmt.Errorf("check: columnar bench: columnar tier under budget %d: %w", cb.BudgetBytes, err)
	}
	defer capped.Purge()
	defer release()
	cb.OverBudget = errors.Is(errRefs, synth.ErrOverBudget) && errors.Is(errRuns, synth.ErrOverBudget)
	if spilled := cf.Size(); spilled > cb.BudgetBytes {
		return nil, fmt.Errorf("check: columnar bench: spilled file %d bytes exceeds budget %d", spilled, cb.BudgetBytes)
	}

	// The store spills at the default ~1MB block size; the bench replays a
	// re-blocked copy so the per-block loop runs dozens of times even at the
	// pinned scale.
	f, err := os.CreateTemp("", "ibscheck-bench-*.ibsc")
	if err != nil {
		return nil, fmt.Errorf("check: columnar bench: %w", err)
	}
	path := f.Name()
	defer os.Remove(path)
	if _, err := trace.EncodeColumnarSize(f, runs, columnarBenchBlockBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("check: columnar bench: encoding: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("check: columnar bench: %w", err)
	}
	bf, err := trace.OpenColumnar(path)
	if err != nil {
		return nil, fmt.Errorf("check: columnar bench: opening: %w", err)
	}
	defer bf.Close()
	cb.FileBytes = bf.Size()
	cb.Blocks = bf.NumBlocks()
	cb.Mapped = bf.Mapped()

	// Flat-RSS pass (untimed): replay from disk with HeapInuse sampled at
	// every block; the peak growth over the post-GC baseline must stay under
	// the RAM budget the expanded trace exceeds tenfold.
	bank, err := columnarBank()
	if err != nil {
		return nil, fmt.Errorf("check: columnar bench: %w", err)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	probe := &memProbe{bs: bf, peak: ms.HeapInuse}
	base := ms.HeapInuse
	if _, err := replay.Blocks(ctx, probe, bank); err != nil {
		return nil, fmt.Errorf("check: columnar bench: probed replay: %w", err)
	}
	cb.HeapGrowthBytes = int64(probe.peak - base)
	cb.FlatRSS = cb.HeapGrowthBytes < cb.BudgetBytes

	// Timed interleaved replays of the same bank through both drivers.
	cb.Identical = true
	var want []fetch.Result
	for i := 0; i < columnarBenchIters; i++ {
		memBank, err := columnarBank()
		if err != nil {
			return nil, fmt.Errorf("check: columnar bench: %w", err)
		}
		start := time.Now()
		ref, err := replay.Replay(ctx, runs, memBank)
		if err != nil {
			return nil, fmt.Errorf("check: columnar bench: in-memory replay: %w", err)
		}
		if t := time.Since(start).Seconds(); i == 0 || t < cb.InMemorySeconds {
			cb.InMemorySeconds = t
		}

		blkBank, err := columnarBank()
		if err != nil {
			return nil, fmt.Errorf("check: columnar bench: %w", err)
		}
		start = time.Now()
		got, err := replay.Blocks(ctx, bf, blkBank)
		if err != nil {
			return nil, fmt.Errorf("check: columnar bench: block replay: %w", err)
		}
		if t := time.Since(start).Seconds(); i == 0 || t < cb.BlockSeconds {
			cb.BlockSeconds = t
		}

		if i == 0 {
			want = ref
		}
		for j := range got {
			cb.Identical = cb.Identical && got[j] == want[j] && ref[j] == want[j]
		}
	}
	if cb.BlockSeconds > 0 {
		cb.Ratio = cb.InMemorySeconds / cb.BlockSeconds
		cb.ThroughputMBs = float64(cb.TraceBytes) / 1e6 / cb.BlockSeconds
	}

	mode := "ReaderAt"
	if cb.Mapped {
		mode = "mmap"
	}
	goldenScale := opt.Instructions == PinnedInstructions && opt.Seed == 0
	perf := fmt.Sprintf("trace 10.0x the %dKB budget replayed from disk (%s, %d blocks) at %.0f MB/s, %.2fx in-memory throughput, peak heap growth %dKB",
		cb.BudgetBytes>>10, mode, cb.Blocks, cb.ThroughputMBs, cb.Ratio, cb.HeapGrowthBytes>>10)
	switch {
	case !cb.Identical:
		cb.Passed = false
		cb.Detail = perf + "; block and in-memory results DIFFER"
	case !cb.OverBudget:
		cb.Passed = false
		cb.Detail = perf + "; store did not reject the in-memory tiers (bench budget no longer binding)"
	case !cb.FlatRSS:
		cb.Passed = false
		cb.Detail = perf + "; heap growth exceeded the RAM budget"
	case !goldenScale:
		cb.Passed = true
		cb.Detail = perf + "; off golden scale, no regression gate"
	default:
		floor := columnarRegressionFraction * columnarGoldenRatio
		cb.Passed = cb.Ratio >= floor
		cb.Detail = fmt.Sprintf("%s; baseline %.2fx, floor %.2fx", perf, columnarGoldenRatio, floor)
	}
	return cb, nil
}

// memProbe wraps a BlockSource, sampling HeapInuse before every block read
// to catch the replay's peak residency.
type memProbe struct {
	bs   trace.BlockSource
	peak uint64
}

func (p *memProbe) NumBlocks() int                  { return p.bs.NumBlocks() }
func (p *memProbe) BlockMeta(i int) trace.BlockMeta { return p.bs.BlockMeta(i) }
func (p *memProbe) BlockRuns(i int, dst []trace.Run) ([]trace.Run, error) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapInuse > p.peak {
		p.peak = ms.HeapInuse
	}
	return p.bs.BlockRuns(i, dst)
}
