package check

import (
	"errors"
	"fmt"
	"reflect"
	"time"

	"ibsim/internal/sweep"
	"ibsim/internal/synth"
)

// SeekBench records the checkpoint-seek streaming benchmark: a skip-mode
// time-sampled sweep (1/16 window coverage) over a store whose hard budget
// rejects every materialized tier, run once by streaming full regeneration
// (RunSource — every instruction generated, measured or not) and once by
// checkpoint seek (RunSeek — only the measured windows generated), with the
// speedup and bit-identity verdicts. cmd/ibscheck embeds it in
// BENCH_ibsim.json as the "seek" stage — this is where the ">=5x at 1/16
// window coverage" promise of the seek tier is pinned against regression.
type SeekBench struct {
	// Instructions is the per-workload scale both paths ran at.
	Instructions int64 `json:"instructions"`
	// OverBudget reports that the store's hard budget rejected the
	// materialized tiers, so both paths really ran over streaming sources.
	OverBudget bool `json:"over_budget"`
	// StreamSeconds and SeekSeconds are the wall-clock times of the
	// full-regeneration streaming pass and the checkpoint-seek pass over
	// the whole suite. Each is the minimum over seekBenchIters interleaved
	// timings; the first streaming pass doubles as the index warm-up.
	StreamSeconds float64 `json:"stream_seconds"`
	SeekSeconds   float64 `json:"seek_seconds"`
	// Speedup is StreamSeconds / SeekSeconds.
	Speedup float64 `json:"speedup"`
	// Coverage is the suite-mean fraction of instructions measured (~1/16).
	Coverage float64 `json:"coverage"`
	// Checkpoints and CheckpointBytes are the store's index footprint after
	// the run — the memory the speedup was bought with.
	Checkpoints     int64 `json:"checkpoints"`
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	// Identical reports that every seeked matrix was bit-identical to the
	// streamed one — estimates, intervals, cluster counts.
	Identical bool `json:"identical"`
	// Passed is the stage verdict: identity and over-budget always, plus
	// (at golden scale) the absolute >=5x floor and no more than a 20%
	// speedup regression against the recorded baseline.
	Passed bool `json:"passed"`
	// Detail summarizes the comparison.
	Detail string `json:"detail"`
}

// seekRegressionFraction gates speedup regressions at the pinned golden
// scale: fail if the measured speedup falls below 80% of seekGoldenSpeedup.
const seekRegressionFraction = 0.8

// seekMinSpeedup is the absolute floor at golden scale: generating only the
// measured 1/16 of the trace must be at least this much faster than
// generating all of it, or the seek tier is not earning its checkpoints.
const seekMinSpeedup = 5.0

// seekBenchIters is how many times each path is timed (interleaved); the
// reported time per path is the minimum.
const seekBenchIters = 2

// seekBenchHardBudget is the bench store's hard budget: far below the refs,
// runs, and columnar footprints of any suite workload at golden scale, so
// every request is forced onto the streaming tiers. The checkpoint index is
// idle-budget metadata and is unaffected.
const seekBenchHardBudget = 1 << 10

// seekBenchGrid is the benchmark's cell grid: deliberately small. The seek
// tier removes GENERATION cost — the sweep's per-line stack work over the
// measured windows is identical on both paths — so a wide grid would just
// pad both timings with shared feed cost and flatten the measured ratio.
// Four cells keep the feed realistic without drowning the signal.
func seekBenchGrid() []sweep.Cell {
	return []sweep.Cell{{Sets: 256, Assoc: 1}, {Sets: 512, Assoc: 1}, {Sets: 256, Assoc: 2}, {Sets: 512, Assoc: 2}}
}

// RunSeekBench times the full-regeneration streaming sampled sweep against
// the checkpoint-seek sampled sweep at 1/16 window coverage over the suite,
// on a store too small to materialize anything, and verifies the seeked
// estimates are bit-identical to the streamed ones.
func RunSeekBench(opt Options) (*SeekBench, error) {
	opt = opt.withDefaults()
	sb := &SeekBench{Instructions: opt.Instructions}
	cells := seekBenchGrid()
	sp := sweep.SampledPass{
		LineSize: 32, Cells: cells,
		Window: seekCheckWindow, Period: seekCheckPeriod,
	}

	store := synth.NewStoreLimits(16<<20, seekBenchHardBudget)
	defer store.Purge()

	// The budget must actually bind, or the "streaming" pass would be a
	// slice walk and the comparison meaningless.
	if _, _, err := store.Instr(opt.Workloads[0], opt.Seed, opt.Instructions); errors.Is(err, synth.ErrOverBudget) {
		sb.OverBudget = true
	} else if err != nil {
		return nil, fmt.Errorf("check: seek bench: probing budget: %w", err)
	}

	var streamed, seeked []*sweep.SampledMatrix
	for i := 0; i < seekBenchIters; i++ {
		streamed = streamed[:0]
		start := time.Now()
		for _, p := range opt.Workloads {
			src, release, err := store.Source(p, opt.Seed, opt.Instructions)
			if err != nil {
				return nil, fmt.Errorf("check: seek bench: stream source %s: %w", p.Name, err)
			}
			m, err := sp.RunSource(src)
			release()
			if err != nil {
				return nil, fmt.Errorf("check: seek bench: streamed sweep %s: %w", p.Name, err)
			}
			streamed = append(streamed, m)
		}
		if t := time.Since(start).Seconds(); i == 0 || t < sb.StreamSeconds {
			sb.StreamSeconds = t
		}

		seeked = seeked[:0]
		start = time.Now()
		for _, p := range opt.Workloads {
			src, release, err := store.SeekSource(p, opt.Seed, opt.Instructions)
			if err != nil {
				return nil, fmt.Errorf("check: seek bench: seek source %s: %w", p.Name, err)
			}
			m, err := sp.RunSeek(src)
			release()
			if err != nil {
				return nil, fmt.Errorf("check: seek bench: seeked sweep %s: %w", p.Name, err)
			}
			seeked = append(seeked, m)
		}
		if t := time.Since(start).Seconds(); i == 0 || t < sb.SeekSeconds {
			sb.SeekSeconds = t
		}
	}
	if sb.SeekSeconds > 0 {
		sb.Speedup = sb.StreamSeconds / sb.SeekSeconds
	}

	sb.Identical = true
	for i := range streamed {
		sb.Coverage += seeked[i].Coverage() / float64(len(streamed))
		if !reflect.DeepEqual(streamed[i], seeked[i]) {
			sb.Identical = false
		}
	}
	st := store.Stats()
	sb.Checkpoints = st.Checkpoints
	sb.CheckpointBytes = st.CheckpointBytes

	goldenScale := opt.Instructions == PinnedInstructions && opt.Seed == 0
	perf := fmt.Sprintf("%.1fx speedup (%.2fs -> %.2fs) at %.1f%% coverage, %d checkpoints (%d B)",
		sb.Speedup, sb.StreamSeconds, sb.SeekSeconds, 100*sb.Coverage, sb.Checkpoints, sb.CheckpointBytes)
	switch {
	case !sb.OverBudget:
		sb.Passed = false
		sb.Detail = perf + "; hard budget did not bind, comparison invalid"
	case !sb.Identical:
		sb.Passed = false
		sb.Detail = perf + "; seeked estimates diverge from streamed"
	case !goldenScale:
		sb.Passed = true
		sb.Detail = perf + "; identical estimates; off golden scale, no regression gate"
	default:
		floor := seekRegressionFraction * seekGoldenSpeedup
		if floor < seekMinSpeedup {
			floor = seekMinSpeedup
		}
		sb.Passed = sb.Speedup >= floor
		sb.Detail = fmt.Sprintf("%s; identical estimates; baseline %.1fx, floor %.1fx", perf, seekGoldenSpeedup, floor)
	}
	return sb, nil
}
