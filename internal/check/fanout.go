package check

import (
	"ibsim/internal/experiments"
)

// fanoutExhibits is the bank-based exhibit set the fan-out replay driver
// accelerates: every table and figure internal/experiments routes through
// mapBanks. Both the differential check and the tables benchmark render
// exactly this set.
func fanoutExhibits() []struct {
	name string
	run  func(experiments.Options) (string, error)
} {
	return []struct {
		name string
		run  func(experiments.Options) (string, error)
	}{
		{"Table5", func(o experiments.Options) (string, error) {
			r, err := experiments.Table5(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"Table6", func(o experiments.Options) (string, error) {
			r, err := experiments.Table6(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"Table7", func(o experiments.Options) (string, error) {
			r, err := experiments.Table7(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"Table8", func(o experiments.Options) (string, error) {
			r, err := experiments.Table8(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"Figure6", func(o experiments.Options) (string, error) {
			r, err := experiments.Figure6(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"Figure7", func(o experiments.Options) (string, error) {
			r, err := experiments.Figure7(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
	}
}

// FanoutVsPerConfig verifies the fan-out replay driver against the trusted
// per-configuration path: Tables 5-8 and Figures 6/7 rendered via the
// default path (memoized run-compacted traces fanned out through
// replay.Replay, with bulk FetchRun and analytic dedup) must be
// byte-identical to the Options.PerConfig reference path (one fetch.Run
// over the expanded trace per engine per workload). This is the guarantee
// that lets the single-pass path replace the per-config one everywhere.
func FanoutVsPerConfig(opt Options) ([]Result, error) {
	opt = opt.withDefaults()
	var harnessErr error
	var out []Result
	out = append(out, timed(func() Result {
		const name = "differential/fanout-tables"
		fastOpt := experiments.Options{Instructions: opt.Instructions, Seed: opt.Seed}
		refOpt := fastOpt
		refOpt.PerConfig = true
		total := 0
		for _, ex := range fanoutExhibits() {
			fast, err := ex.run(fastOpt)
			if err != nil {
				harnessErr = err
				return fail(name, "%s fan-out path: %v", ex.name, err)
			}
			ref, err := ex.run(refOpt)
			if err != nil {
				harnessErr = err
				return fail(name, "%s per-config path: %v", ex.name, err)
			}
			if fast != ref {
				return fail(name, "%s: fan-out and per-config renders differ", ex.name)
			}
			total += len(fast)
		}
		return pass(name, "Tables 5-8 + Figures 6/7 fan-out renders == per-config renders (%d bytes)", total)
	}))
	return out, harnessErr
}
