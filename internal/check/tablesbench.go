package check

import (
	"context"
	"fmt"
	"time"

	"ibsim/internal/experiments"
	"ibsim/internal/synth"
)

// TablesBench records the fetch-engine fan-out benchmark: Tables 5-8 and
// Figures 6/7 rendered through the original per-configuration path and
// through the single-pass fan-out replay path (run-compacted traces, bulk
// FetchRun, analytic dedup), with the byte-identity and speedup verdicts.
// cmd/ibscheck embeds it in BENCH_ibsim.json as the "tables" stage.
type TablesBench struct {
	// Instructions is the per-workload scale both paths ran at.
	Instructions int64 `json:"instructions"`
	// PerConfigSeconds and FanoutSeconds are the wall-clock times of the
	// two paths (trace generation and run compaction excluded — the store
	// is warmed first, runs included). Each is the minimum over
	// tablesBenchIters interleaved timings, which measures the paths' real
	// cost rather than transient scheduler noise.
	PerConfigSeconds float64 `json:"perconfig_seconds"`
	FanoutSeconds    float64 `json:"fanout_seconds"`
	// Speedup is PerConfigSeconds / FanoutSeconds.
	Speedup float64 `json:"speedup"`
	// Identical reports whether the two paths rendered byte-identical
	// exhibits — a hard requirement.
	Identical bool `json:"identical"`
	// Passed is the stage verdict: identical output, and (at golden scale)
	// no more than a 20% speedup regression against the recorded baseline.
	Passed bool `json:"passed"`
	// Detail summarizes the comparison.
	Detail string `json:"detail"`
}

// tablesRegressionFraction gates speedup regressions at the pinned golden
// scale: the run fails if the measured speedup falls below 80% of the
// recorded baseline (tablesGoldenSpeedup in golden.go), i.e. a >20%
// regression of the fan-out path relative to the per-config path. The
// ratio-of-ratios form keeps the gate machine-independent.
const tablesRegressionFraction = 0.8

// tablesBenchIters is how many times each path is timed (interleaved); the
// reported time per path is the minimum. Two suffice: a burst of background
// load long enough to slow both timings of a path is rare, and anything
// larger inflates a check that already simulates every exhibit four times.
const tablesBenchIters = 2

// RunTablesBench times Tables 5-8 and Figures 6/7 through both execution
// paths and verifies the fan-out path's output and performance. The trace
// store is warmed with both the expanded and the run-compacted form of every
// workload (and held for the duration), so the timings isolate simulation
// cost on each path, matching how the exhibits run inside a long-lived
// process.
func RunTablesBench(opt Options) (*TablesBench, error) {
	opt = opt.withDefaults()
	tb := &TablesBench{Instructions: opt.Instructions}

	releases := make([]func(), 0, len(opt.Workloads))
	defer func() {
		for _, r := range releases {
			r()
		}
	}()
	ctx := context.Background()
	for _, p := range opt.Workloads {
		_, _, release, err := synth.DefaultStore.InstrRuns(ctx, p, opt.Seed, opt.Instructions)
		if err != nil {
			return nil, fmt.Errorf("check: tables bench: warming %s: %w", p.Name, err)
		}
		releases = append(releases, release)
	}
	// Table 5 additionally replays the SPEC92 suite; warm it too so the
	// per-config timing is not charged for generating traces the fan-out
	// path then gets for free.
	for _, p := range synth.SPEC92() {
		_, _, release, err := synth.DefaultStore.InstrRuns(ctx, p, opt.Seed, opt.Instructions)
		if err != nil {
			return nil, fmt.Errorf("check: tables bench: warming %s: %w", p.Name, err)
		}
		releases = append(releases, release)
	}

	render := func(eo experiments.Options) (string, error) {
		var out string
		for _, ex := range fanoutExhibits() {
			s, err := ex.run(eo)
			if err != nil {
				return "", fmt.Errorf("%s: %w", ex.name, err)
			}
			out += s
		}
		return out, nil
	}

	eo := experiments.Options{Instructions: opt.Instructions, Seed: opt.Seed}
	perCfg := eo
	perCfg.PerConfig = true

	tb.Identical = true
	var refOut, fastOut string
	for i := 0; i < tablesBenchIters; i++ {
		start := time.Now()
		ref, err := render(perCfg)
		if err != nil {
			return nil, fmt.Errorf("check: tables bench: per-config path: %w", err)
		}
		if t := time.Since(start).Seconds(); i == 0 || t < tb.PerConfigSeconds {
			tb.PerConfigSeconds = t
		}

		start = time.Now()
		fast, err := render(eo)
		if err != nil {
			return nil, fmt.Errorf("check: tables bench: fan-out path: %w", err)
		}
		if t := time.Since(start).Seconds(); i == 0 || t < tb.FanoutSeconds {
			tb.FanoutSeconds = t
		}

		// Every iteration must agree, within a path and across paths: the
		// renders are deterministic, so any drift is a bug.
		if i == 0 {
			refOut, fastOut = ref, fast
		}
		tb.Identical = tb.Identical && fast == refOut && ref == refOut && fast == fastOut
	}
	if tb.FanoutSeconds > 0 {
		tb.Speedup = tb.PerConfigSeconds / tb.FanoutSeconds
	}

	goldenScale := opt.Instructions == PinnedInstructions && opt.Seed == 0
	switch {
	case !tb.Identical:
		tb.Passed = false
		tb.Detail = "fan-out and per-config table renders differ"
	case !goldenScale:
		tb.Passed = true
		tb.Detail = fmt.Sprintf("identical output, %.1fx speedup (%.2fs -> %.2fs); off golden scale, no regression gate",
			tb.Speedup, tb.PerConfigSeconds, tb.FanoutSeconds)
	default:
		floor := tablesRegressionFraction * tablesGoldenSpeedup
		tb.Passed = tb.Speedup >= floor
		tb.Detail = fmt.Sprintf("identical output, %.1fx speedup (%.2fs -> %.2fs); baseline %.1fx, floor %.1fx",
			tb.Speedup, tb.PerConfigSeconds, tb.FanoutSeconds, tablesGoldenSpeedup, floor)
	}
	return tb, nil
}
