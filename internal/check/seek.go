package check

import (
	"bytes"
	"context"
	"os"
	"reflect"

	"ibsim/internal/replay"
	"ibsim/internal/sweep"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

// Checkpoint-seek differentials: the two acceptance properties of the
// seekable-generator machinery, pinned as first-class ibscheck checks.
//
//   - differential/seek-sampled: a skip-mode time-sampled sweep and replay
//     executed by seeking a checkpointed source from window start to window
//     start (sweep.SampledPass.RunSeek, replay.SampledSeek) must be
//     bit-identical to the run-materialized sampled paths over the same
//     trace — estimates, confidence intervals, cluster counts, everything.
//   - differential/parallel-spill: the store's parallel columnar spill
//     (scout/worker/merger over checkpoint-aligned chunks) must produce an
//     IBSTRACE/v3 file byte-identical to the sequential spill of the same
//     (profile, seed, n).

const (
	// seekCheckEvery is the checkpoint interval the differentials record
	// at: small enough that the fixture traces span many checkpoints.
	seekCheckEvery = 2048
	// seekCheckWindow/seekCheckPeriod is the skip-mode schedule — 1/16
	// coverage, the same operating point the bench-seek gate times.
	seekCheckWindow = 1024
	seekCheckPeriod = 16 * seekCheckWindow
)

// seekSpillWorkers is the parallel spill's fan-out in the differential.
const seekSpillWorkers = 4

// SeekChecks runs the checkpoint-seek differentials.
func SeekChecks(opt Options) ([]Result, error) {
	opt = opt.withDefaults()
	p := opt.Workloads[0]
	n := opt.Instructions
	ctx := context.Background()

	refs, err := synth.InstrTrace(p, opt.Seed, n)
	if err != nil {
		return nil, err
	}
	runs := trace.Compact(refs)

	var harnessErr error
	var out []Result

	out = append(out, timed(func() Result {
		const name = "differential/seek-sampled"
		store := synth.NewStore(16 << 20)
		store.SetCheckpointEvery(seekCheckEvery)
		defer store.Purge()

		// Warm the index: one full generation pass leaves the checkpoint
		// trail the seeking passes jump through — exactly how ordinary
		// store passes warm it in production. Without it a seek-mode pass
		// only ever generates measured windows and records nothing.
		warm, release, err := store.SeekSource(p, opt.Seed, n)
		if err != nil {
			return fail(name, "warming seek source: %v", err)
		}
		for {
			if _, ok := warm.Next(); !ok {
				break
			}
		}
		release()

		sp := sweep.SampledPass{
			LineSize:      32,
			Cells:         []sweep.Cell{{Sets: 256, Assoc: 1}, {Sets: 512, Assoc: 2}},
			CountDistinct: true,
			Window:        seekCheckWindow,
			Period:        seekCheckPeriod,
		}
		want, err := sp.Run(runs)
		if err != nil {
			return fail(name, "materialized sampled sweep: %v", err)
		}
		src, release, err := store.SeekSource(p, opt.Seed, n)
		if err != nil {
			return fail(name, "opening seek source: %v", err)
		}
		got, err := sp.RunSeek(src)
		release()
		if err != nil {
			return fail(name, "seeking sampled sweep: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			return fail(name, "seek-sampled sweep diverges from Run over the compacted trace")
		}

		plan := replay.SamplePlan{Window: seekCheckWindow, Period: seekCheckPeriod}
		wantBank, err := columnarBank()
		if err != nil {
			harnessErr = err
			return fail(name, "building bank: %v", err)
		}
		wantR, err := replay.Sampled(ctx, runs, wantBank, plan)
		if err != nil {
			return fail(name, "materialized sampled replay: %v", err)
		}
		gotBank, err := columnarBank()
		if err != nil {
			harnessErr = err
			return fail(name, "building bank: %v", err)
		}
		src, release, err = store.SeekSource(p, opt.Seed, n)
		if err != nil {
			return fail(name, "reopening seek source: %v", err)
		}
		gotR, err := replay.SampledSeek(ctx, src, gotBank, plan)
		release()
		if err != nil {
			return fail(name, "seeking sampled replay: %v", err)
		}
		for i := range wantR {
			if !reflect.DeepEqual(gotR[i], wantR[i]) {
				return fail(name, "engine %d: seek-sampled replay diverges: %+v vs %+v", i, gotR[i], wantR[i])
			}
		}
		st := store.Stats()
		if st.Checkpoints == 0 {
			return fail(name, "store recorded no checkpoints; the seek path degenerated to sequential generation")
		}
		return pass(name, "seek ≡ materialized at %.1f%% coverage: %d/%d instructions measured, %d checkpoints (%d bytes) indexed",
			100*want.Coverage(), want.SampledInstructions, want.TotalInstructions, st.Checkpoints, st.CheckpointBytes)
	}))

	out = append(out, timed(func() Result {
		const name = "differential/parallel-spill"
		spill := func(workers int) ([]byte, int64, error) {
			st := synth.NewStore(0)
			st.SetCheckpointEvery(seekCheckEvery)
			st.SetSpillWorkers(workers)
			defer st.Purge()
			cf, release, err := st.Columnar(ctx, p, opt.Seed, n)
			if err != nil {
				return nil, 0, err
			}
			defer release()
			data, err := os.ReadFile(cf.Path())
			if err != nil {
				return nil, 0, err
			}
			return data, cf.Refs(), nil
		}
		seq, seqRefs, err := spill(1)
		if err != nil {
			return fail(name, "sequential spill: %v", err)
		}
		par, parRefs, err := spill(seekSpillWorkers)
		if err != nil {
			return fail(name, "parallel spill (%d workers): %v", seekSpillWorkers, err)
		}
		if seqRefs != int64(len(refs)) {
			return fail(name, "sequential spill indexes %d refs, trace has %d", seqRefs, len(refs))
		}
		if parRefs != seqRefs {
			return fail(name, "parallel spill indexes %d refs, sequential %d", parRefs, seqRefs)
		}
		if !bytes.Equal(seq, par) {
			i := 0
			for i < len(seq) && i < len(par) && seq[i] == par[i] {
				i++
			}
			return fail(name, "parallel spill file diverges from sequential at byte %d (%d vs %d bytes total)",
				i, len(par), len(seq))
		}
		return pass(name, "%d-worker spill byte-identical to sequential: %d bytes, %d instructions",
			seekSpillWorkers, len(seq), seqRefs)
	}))

	return out, harnessErr
}
