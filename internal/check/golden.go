package check

// PinnedInstructions is the per-workload instruction budget the committed
// goldens were measured at. Runs at any other scale (or a non-zero seed)
// still time every stage but skip value comparison.
const PinnedInstructions = 200_000

// defaultRelTol is the golden tolerance when a Golden leaves RelTol zero.
// The simulators are deterministic, so 1e-9 flags any behavioral change
// while absorbing floating-point reassociation from refactors.
const defaultRelTol = 1e-9

// goldens pins the bench stages' expected suite-mean values at
// PinnedInstructions with seed 0 (the calibrated profile seeds).
//
// Provenance: measured by `go run ./cmd/ibscheck -n 200000 -print-golden`
// on the commit that introduced each value; EXPERIMENTS.md documents the
// regeneration workflow. Update these ONLY when a PR deliberately changes
// simulator behavior, and say so in the PR description.
// figure34GoldenSpeedup is the recorded Figure 3 + Figure 4 speedup of the
// single-pass sweep path over the per-configuration path at the pinned
// scale, measured by `go run ./cmd/ibscheck -n 200000` on the commit that
// introduced the sweep engine. RunFigureBench fails a golden-scale run whose
// measured speedup drops below 80% of this (a >20% regression). As a ratio
// of two same-process wall-clocks it is machine-independent to first order;
// update it alongside deliberate sweep-engine changes.
const figure34GoldenSpeedup = 6.3

// tablesGoldenSpeedup is the recorded Tables 5-8 + Figures 6/7 speedup of
// the fan-out replay path (run-compacted traces, bulk FetchRun, analytic
// dedup of same-geometry blocking engines) over the per-configuration path
// at the pinned scale, measured by `go run ./cmd/ibscheck -n 200000` on the
// commit that introduced the replay driver. RunTablesBench fails a
// golden-scale run whose measured speedup drops below 80% of this; update
// it alongside deliberate replay-path changes.
const tablesGoldenSpeedup = 3.1

// samplingGoldenSpeedup is the recorded speedup of the 1/16 set-sampled
// sweep over the exact sweep on the full 1KB-64KB grid at the pinned scale,
// measured by `go run ./cmd/ibscheck -n 200000` on the commit that
// introduced the sampled engine. RunSamplingBench fails a golden-scale run
// whose measured speedup drops below 80% of this; update it alongside
// deliberate sampled-sweep changes.
const samplingGoldenSpeedup = 11.5

// seekGoldenSpeedup is the recorded speedup of the checkpoint-seek
// streaming sampled sweep (RunSeek, generating only the measured 1/16 of
// the windows) over full streaming regeneration (RunSource) on an
// over-budget store at the pinned scale, measured by `go run ./cmd/ibscheck
// -n 200000` on the commit that introduced the seekable generators (11-14x
// across runs; pinned below the observed minimum because the seeked pass is
// only a few milliseconds and the ratio is timer-noisy). RunSeekBench fails
// a golden-scale run whose measured speedup drops below 80% of this (or
// below the absolute 5x floor); update it alongside deliberate generator or
// checkpoint-format changes.
const seekGoldenSpeedup = 9.0

// columnarGoldenRatio is the recorded relative throughput of the
// block-granular columnar replay (replay.Blocks over the on-disk file) versus
// the in-memory fan-out path (replay.Replay over materialized runs) on the
// same engine bank at the pinned scale, measured by `go run ./cmd/ibscheck
// -n 200000` on the commit that introduced the columnar format. 1.0 is
// parity; the per-block varint decode keeps it slightly under. As a ratio of
// two same-process wall-clocks it is machine-independent to first order;
// RunColumnarBench fails a golden-scale run whose measured ratio drops below
// 80% of this. Update it alongside deliberate columnar codec or block-driver
// changes.
const columnarGoldenRatio = 0.9

var goldens = map[string]Golden{
	"cache/base-l1":   {CPI: 0, MPI: 0.04838},
	"fetch/blocking":  {CPI: 0.33866, MPI: 0.04838},
	"fetch/prefetch3": {CPI: 0.219318125, MPI: 0.016870625},
	"fetch/bypass3":   {CPI: 0.111716875, MPI: 0.016870625},
	"fetch/stream6":   {CPI: 0.09537124999999999, MPI: 0.013551875},
	"system/gs":       {CPI: 1.531565, MPI: 0},
}
