package check

import (
	"runtime"
	"time"
)

// TB is the minimal testing handle the goroutine-leak checker needs —
// satisfied by *testing.T and *testing.B without importing testing into
// non-test code.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// NoGoroutineLeak snapshots the live goroutine count and returns a function
// that asserts the count has returned to (or below) the baseline — the
// bracket to put around a server drain or a coordinator shutdown. Goroutines
// wind down asynchronously after a close returns, so the assertion polls
// briefly before declaring a leak; on failure it reports every live stack so
// the leaked goroutine is identifiable from the test log.
func NoGoroutineLeak(t TB) func() {
	t.Helper()
	baseline := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		n := runtime.NumGoroutine()
		for n > baseline && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		if n <= baseline {
			return
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d live after shutdown, %d at baseline\n%s", n, baseline, buf)
	}
}
