package check

import (
	"strings"
	"testing"
)

// The checkpoint-seek differentials must hold at a sub-golden scale that
// still spans many windows and spill chunks.
func TestSeekChecksPass(t *testing.T) {
	results, err := SeekChecks(Options{Instructions: 80_000})
	if err != nil {
		t.Fatalf("harness failure: %v", err)
	}
	want := []string{"differential/seek-sampled", "differential/parallel-spill"}
	if len(results) != len(want) {
		t.Fatalf("%d results, want %d", len(results), len(want))
	}
	for i, r := range results {
		if r.Name != want[i] {
			t.Errorf("result %d = %q, want %q", i, r.Name, want[i])
		}
		if !r.Passed {
			t.Errorf("%s failed: %s", r.Name, r.Detail)
		}
	}
	if !strings.Contains(results[0].Detail, "checkpoints") {
		t.Errorf("seek-sampled detail does not report the checkpoint index: %s", results[0].Detail)
	}
	if !strings.Contains(results[1].Detail, "byte-identical") {
		t.Errorf("parallel-spill detail does not state byte identity: %s", results[1].Detail)
	}
}

// The chaos checkpoint-corruption scenario in isolation (it also runs
// inside RunChaos).
func TestChaosCheckpointCorrupt(t *testing.T) {
	opt := Options{Instructions: 50_000}.withDefaults()
	r := chaosCheckpointCorrupt(opt.Workloads[0], opt.Seed)
	if !r.Passed {
		t.Fatalf("%s: %s", r.Name, r.Detail)
	}
	if !strings.Contains(r.Detail, "CRC") {
		t.Fatalf("detail does not describe CRC detection: %s", r.Detail)
	}
}
