package crashfs_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ibsim/internal/crashfs"
)

// atomicReplace is the canonical crash-safe sequence the simulator models:
// temp, write, fsync, rename, directory sync.
func atomicReplace(fsys crashfs.FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, ".out.tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(f.Name(), path); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// TestCrashSimSchedule pins the op accounting: the recording pass counts
// every durability-relevant op, a crash at op k fails op k without applying
// it, and every later op fails with ErrCrashed.
func TestCrashSimSchedule(t *testing.T) {
	root := t.TempDir()
	rec := crashfs.NewSim(root, -1)
	if err := atomicReplace(rec, filepath.Join(root, "a"), []byte("hello")); err != nil {
		t.Fatalf("recording pass: %v", err)
	}
	total := rec.OpCount()
	if total != 6 { // create, write, sync, close, rename, syncdir
		t.Fatalf("op schedule = %d ops %v, want 6", total, rec.Ops())
	}
	for k := 0; k < total; k++ {
		root := t.TempDir()
		sim := crashfs.NewSim(root, k)
		err := atomicReplace(sim, filepath.Join(root, "a"), []byte("hello"))
		if !errors.Is(err, crashfs.ErrCrashed) {
			t.Fatalf("crash at op %d: err = %v, want ErrCrashed", k, err)
		}
		if !sim.Crashed() {
			t.Fatalf("crash at op %d: simulator not crashed", k)
		}
		// Power is off: nothing works any more, including reads.
		if _, err := sim.ReadFile(filepath.Join(root, "a")); !errors.Is(err, crashfs.ErrCrashed) {
			t.Fatalf("read after crash: err = %v, want ErrCrashed", err)
		}
		if err := sim.Remove(filepath.Join(root, "a")); !errors.Is(err, crashfs.ErrCrashed) {
			t.Fatalf("cleanup after crash: err = %v, want ErrCrashed", err)
		}
	}
}

// TestCrashSimVariants walks one atomic replace over existing content and
// pins what each durability variant exposes at the interesting crash points.
func TestCrashSimVariants(t *testing.T) {
	oldData, newData := []byte("old-content"), []byte("new-content!")
	readImage := func(sim *crashfs.Sim, v crashfs.Variant) map[string]string {
		t.Helper()
		dst := t.TempDir()
		if err := sim.Materialize(dst, v); err != nil {
			t.Fatalf("materialize %s: %v", v, err)
		}
		out := map[string]string{}
		err := filepath.WalkDir(dst, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			rel, _ := filepath.Rel(dst, path)
			out[rel] = string(data)
			return nil
		})
		if err != nil {
			t.Fatalf("walking image: %v", err)
		}
		return out
	}
	run := func(crashAt int) (*crashfs.Sim, string) {
		root := t.TempDir()
		if err := os.WriteFile(filepath.Join(root, "a"), oldData, 0o644); err != nil {
			t.Fatal(err)
		}
		sim := crashfs.NewSim(root, crashAt)
		atomicReplace(sim, filepath.Join(root, "a"), newData)
		return sim, root
	}

	// Crash at the rename (op 4): the rename never applies. Every variant
	// keeps the old content; the synced temp survives as debris except under
	// Lost-with-uncommitted-create... the temp WAS fsynced, so it is durable.
	sim, _ := run(4)
	for _, v := range crashfs.Variants {
		img := readImage(sim, v)
		if img["a"] != string(oldData) {
			t.Errorf("crash at rename, %s: a = %q, want old content", v, img["a"])
		}
	}

	// Crash at the directory sync (op 5): the rename applied but is not
	// committed. Lost rolls it back — old content at the published path, the
	// new bytes surviving only as temp debris; Torn and Flushed show the new
	// content.
	sim, _ = run(5)
	img := readImage(sim, crashfs.Lost)
	if img["a"] != string(oldData) {
		t.Errorf("crash at syncdir, lost: a = %q, want old content", img["a"])
	}
	foundDebris := false
	for name, content := range img {
		if strings.Contains(name, ".tmp-") {
			foundDebris = true
			if content != string(newData) {
				t.Errorf("crash at syncdir, lost: debris %s = %q, want synced new content", name, content)
			}
		}
	}
	if !foundDebris {
		t.Errorf("crash at syncdir, lost: synced temp did not survive as debris: %v", img)
	}
	for _, v := range []crashfs.Variant{crashfs.Torn, crashfs.Flushed} {
		if img := readImage(sim, v); img["a"] != string(newData) {
			t.Errorf("crash at syncdir, %s: a = %q, want new content", v, img["a"])
		}
	}

	// Crash at the sync (op 2): unsynced temp data. Lost drops the
	// uncommitted temp entirely; Torn tears its bytes.
	sim, _ = run(2)
	img = readImage(sim, crashfs.Lost)
	for name := range img {
		if strings.Contains(name, ".tmp-") {
			t.Errorf("crash at sync, lost: unsynced uncommitted temp survived as %s", name)
		}
	}
	img = readImage(sim, crashfs.Torn)
	for name, content := range img {
		if strings.Contains(name, ".tmp-") && len(content) >= len(newData) {
			t.Errorf("crash at sync, torn: temp %s holds %d bytes, want a torn prefix of %d",
				name, len(content), len(newData))
		}
	}
}

// TestCrashSimRemoveResurrection pins the tombstone model: a remove of
// durable content is reversible until the directory sync commits it.
func TestCrashSimRemoveResurrection(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "a"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash at the syncdir following the remove: the remove rolls back.
	sim := crashfs.NewSim(root, 1)
	if err := sim.Remove(filepath.Join(root, "a")); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := sim.SyncDir(root); !errors.Is(err, crashfs.ErrCrashed) {
		t.Fatalf("syncdir: err = %v, want ErrCrashed", err)
	}
	dst := t.TempDir()
	if err := sim.Materialize(dst, crashfs.Lost); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dst, "a"))
	if err != nil || !bytes.Equal(data, []byte("keep")) {
		t.Fatalf("lost image: a = %q, %v; want removed file resurrected", data, err)
	}
	// Flushed commits the remove: the file is gone.
	dst = t.TempDir()
	if err := sim.Materialize(dst, crashfs.Flushed); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dst, "a")); !os.IsNotExist(err) {
		t.Fatalf("flushed image: removed file still present (%v)", err)
	}
}

// TestCrashTortureCatchesUnsafeWriter is the harness's negative control: a
// writer that clobbers the published path in place — no temp, no fsync —
// must FAIL an old-or-new verifier at some crash point. If this test fails,
// the torture harness has lost its teeth.
func TestCrashTortureCatchesUnsafeWriter(t *testing.T) {
	oldData, newData := []byte("old-content"), []byte("new-content!")
	tor := crashfs.Torture{
		Setup: func(root string) error {
			return os.WriteFile(filepath.Join(root, "a"), oldData, 0o644)
		},
		Write: func(fsys crashfs.FS, root string) error {
			f, err := fsys.Create(filepath.Join(root, "a"))
			if err != nil {
				return err
			}
			if _, err := f.Write(newData); err != nil {
				return err
			}
			return f.Close()
		},
		Verify: func(img crashfs.Image) error {
			data, err := os.ReadFile(filepath.Join(img.Dir, "a"))
			if err != nil {
				return err
			}
			if !bytes.Equal(data, oldData) && !bytes.Equal(data, newData) {
				return errors.New("neither old nor new")
			}
			return nil
		},
	}
	if _, _, err := tor.Run(); err == nil {
		t.Fatal("torture passed an in-place clobbering writer; it must expose a torn state")
	}
}

// TestCrashTortureControl pins the harness bookkeeping: a safe writer sweeps
// every (crash point, variant) pair including the clean-completion control,
// and a write sequence with no persistence ops is a harness error.
func TestCrashTortureControl(t *testing.T) {
	data := []byte("payload")
	tor := crashfs.Torture{
		Write: func(fsys crashfs.FS, root string) error {
			return atomicReplace(fsys, filepath.Join(root, "a"), data)
		},
		Verify: func(img crashfs.Image) error {
			got, err := os.ReadFile(filepath.Join(img.Dir, "a"))
			if img.Op == img.TotalOps { // control point: the write completed
				if err != nil || !bytes.Equal(got, data) {
					return errors.New("completed write not visible in the flushed image")
				}
			}
			return nil
		},
	}
	points, images, err := tor.Run()
	if err != nil {
		t.Fatalf("torture: %v", err)
	}
	if points != 7 { // 6 ops + control
		t.Errorf("points = %d, want 7", points)
	}
	if images != points*len(crashfs.Variants) {
		t.Errorf("images = %d, want %d", images, points*len(crashfs.Variants))
	}

	empty := crashfs.Torture{
		Write:  func(fsys crashfs.FS, root string) error { return nil },
		Verify: func(img crashfs.Image) error { return nil },
	}
	if _, _, err := empty.Run(); err == nil {
		t.Error("torture accepted a write sequence with zero persistence ops")
	}
}
