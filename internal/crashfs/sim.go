package crashfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrCrashed is returned by every operation once the simulated power has
// failed: the op at the crash point does not execute, and nothing after it
// can touch the disk. Persistence code must treat it like any other I/O
// error — a process that has lost power does not get to clean up.
var ErrCrashed = errors.New("crashfs: simulated power failure")

// Variant selects how much un-committed state a crash image retains. A
// correct recovery path must hold its contract under all three — a real
// power cut lands anywhere in between.
type Variant int

const (
	// Lost is the adversarial journal replay: data past the last fsync is
	// gone, and namespace operations (renames, creates, removes) not yet
	// committed by a directory sync are rolled back — a published rename
	// can vanish, exposing the old artifact plus the temp file as debris.
	Lost Variant = iota
	// Torn applies every namespace operation but tears unsynced data in
	// half: the classic truncated-temp / half-written-file image.
	Torn
	// Flushed persists everything as the process last saw it — the kernel
	// wrote every cache back just before the power died.
	Flushed
)

// String names the variant for failure reports.
func (v Variant) String() string {
	switch v {
	case Lost:
		return "lost"
	case Torn:
		return "torn"
	case Flushed:
		return "flushed"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// Variants is the full durability sweep Torture runs by default.
var Variants = []Variant{Lost, Torn, Flushed}

// Op records one durability-relevant operation for crash-point enumeration
// and failure reporting.
type Op struct {
	// Kind is the operation name: mkdir, create, write, sync, close,
	// rename, remove, syncdir.
	Kind string
	// Path is the primary path touched (the destination for renames).
	Path string
}

func (o Op) String() string { return o.Kind + " " + o.Path }

// fileState tracks one file's durability relative to the live tree.
type fileState struct {
	size   int64 // live length (append-only model)
	synced int64 // length guaranteed durable by the last fsync
	// nsCommitted: the entry's presence at its current path is durable
	// (fsync of the file, or a directory sync after the namespace op that
	// put it here).
	nsCommitted bool
	// srcPath is where the file durably lives when an un-committed rename
	// moved it ("" = nowhere / current path). In the Lost variant the file
	// reappears there.
	srcPath string
	// replaced is the content an un-committed rename clobbered at the
	// current path; the Lost variant restores it.
	replaced []byte
}

// Sim is the power-failure simulator: an FS over a real backing directory
// (so live readers, mmap included, behave exactly as on the OS) that counts
// durability-relevant ops, fails everything from a chosen op onward, and
// materializes the post-crash disk image. Not safe for concurrent use by
// multiple writers of the same file; concurrent distinct-file use is
// serialized internally.
type Sim struct {
	root string

	mu      sync.Mutex
	crashAt int // op index at which power fails; -1 = never
	crashed bool
	ops     []Op
	files   map[string]*fileState
	tombs   map[string][]byte // un-committed removes: durable content by path
}

// NewSim returns a simulator over root (which must exist) that kills the
// power at op index crashAt (-1 = never — the recording pass).
func NewSim(root string, crashAt int) *Sim {
	return &Sim{
		root:    root,
		crashAt: crashAt,
		files:   map[string]*fileState{},
		tombs:   map[string][]byte{},
	}
}

// OpCount returns how many durability-relevant ops have been attempted
// (including the one that crashed).
func (s *Sim) OpCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ops)
}

// Ops returns the recorded op schedule.
func (s *Sim) Ops() []Op {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Op(nil), s.ops...)
}

// Crashed reports whether the power has failed.
func (s *Sim) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// gate records a durability-relevant op and fails it when the crash point
// is reached. Callers hold s.mu.
func (s *Sim) gate(kind, path string) error {
	if s.crashed {
		return fmt.Errorf("%s %s: %w", kind, path, ErrCrashed)
	}
	s.ops = append(s.ops, Op{Kind: kind, Path: path})
	if s.crashAt >= 0 && len(s.ops)-1 == s.crashAt {
		s.crashed = true
		return fmt.Errorf("%s %s: %w", kind, path, ErrCrashed)
	}
	return nil
}

// readGate fails reads after the crash without counting them as crash
// points: a powered-off machine serves no reads, but reads do not change
// what survives.
func (s *Sim) readGate(kind, path string) error {
	if s.crashed {
		return fmt.Errorf("%s %s: %w", kind, path, ErrCrashed)
	}
	return nil
}

func (s *Sim) state(path string) *fileState {
	st, ok := s.files[path]
	if !ok {
		st = &fileState{}
		s.files[path] = st
	}
	return st
}

// durableSnapshot returns the path and content a tracked file would occupy
// after losing every un-committed op, or "" when nothing survives.
func (s *Sim) durableSnapshot(path string, st *fileState) (string, []byte) {
	loc := ""
	if st.nsCommitted {
		loc = path
	} else if st.srcPath != "" {
		loc = st.srcPath
	}
	if loc == "" {
		return "", nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil
	}
	if st.synced < int64(len(data)) {
		data = data[:st.synced]
	}
	return loc, data
}

// MkdirAll implements FS.
func (s *Sim) MkdirAll(path string, perm os.FileMode) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.gate("mkdir", path); err != nil {
		return err
	}
	return os.MkdirAll(path, perm)
}

// Create implements FS. Creating over an existing file snapshots the old
// content so the Lost variant can expose it.
func (s *Sim) Create(name string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.gate("create", name); err != nil {
		return nil, err
	}
	old, _ := os.ReadFile(name)
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	st := &fileState{}
	if old != nil {
		st.replaced = old
	}
	s.files[name] = st
	return &simFile{s: s, f: f, path: name}, nil
}

// CreateTemp implements FS.
func (s *Sim) CreateTemp(dir, pattern string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.gate("create", filepath.Join(dir, pattern)); err != nil {
		return nil, err
	}
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	s.files[f.Name()] = &fileState{}
	return &simFile{s: s, f: f, path: f.Name()}, nil
}

// Rename implements FS. The rename applies to the live tree immediately but
// stays un-committed — reversible by a crash — until the parent directory
// is synced.
func (s *Sim) Rename(oldpath, newpath string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.gate("rename", newpath); err != nil {
		return err
	}
	replaced, _ := os.ReadFile(newpath)
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	st, ok := s.files[oldpath]
	if !ok {
		// Untracked files predate the simulator and are fully durable.
		st = &fileState{nsCommitted: true}
		if fi, err := os.Stat(newpath); err == nil {
			st.size = fi.Size()
			st.synced = fi.Size()
		}
	}
	delete(s.files, oldpath)
	src := ""
	if st.nsCommitted {
		src = oldpath
	} else if st.srcPath != "" {
		src = st.srcPath
	}
	st.srcPath = src
	st.nsCommitted = false
	st.replaced = replaced
	s.files[newpath] = st
	return nil
}

// Remove implements FS. Removing a durable file stays reversible until the
// parent directory is synced: the Lost variant resurrects it.
func (s *Sim) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.gate("remove", name); err != nil {
		return err
	}
	st, tracked := s.files[name]
	if !tracked {
		if data, err := os.ReadFile(name); err == nil {
			s.tombs[name] = data
		}
	} else {
		if loc, data := s.durableSnapshot(name, st); loc != "" {
			s.tombs[loc] = data
		}
		delete(s.files, name)
	}
	return os.Remove(name)
}

// ReadFile implements FS.
func (s *Sim) ReadFile(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.readGate("read", name); err != nil {
		return nil, err
	}
	return os.ReadFile(name)
}

// ReadDir implements FS.
func (s *Sim) ReadDir(name string) ([]fs.DirEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.readGate("readdir", name); err != nil {
		return nil, err
	}
	return os.ReadDir(name)
}

// SyncDir implements FS: commits every pending namespace op (create,
// rename, remove) for entries directly inside dir.
func (s *Sim) SyncDir(dir string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.gate("syncdir", dir); err != nil {
		return err
	}
	for path, st := range s.files {
		if filepath.Dir(path) != dir {
			continue
		}
		st.nsCommitted = true
		st.srcPath = ""
		st.replaced = nil
	}
	for path := range s.tombs {
		if filepath.Dir(path) == dir {
			delete(s.tombs, path)
		}
	}
	return nil
}

// simFile is a Sim-tracked open file.
type simFile struct {
	s    *Sim
	f    *os.File
	path string
}

func (f *simFile) Name() string { return f.path }

func (f *simFile) Write(p []byte) (int, error) {
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	if err := f.s.gate("write", f.path); err != nil {
		return 0, err
	}
	n, err := f.f.Write(p)
	if st, ok := f.s.files[f.path]; ok {
		st.size += int64(n)
	}
	return n, err
}

// Chmod passes through without counting as a crash point: mode bits do not
// participate in the recovery contracts under test.
func (f *simFile) Chmod(mode os.FileMode) error {
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	if err := f.s.readGate("chmod", f.path); err != nil {
		return err
	}
	return f.f.Chmod(mode)
}

// Sync makes the file's data — and its directory entry at the current path
// — durable.
func (f *simFile) Sync() error {
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	if err := f.s.gate("sync", f.path); err != nil {
		return err
	}
	if err := f.f.Sync(); err != nil {
		return err
	}
	if st, ok := f.s.files[f.path]; ok {
		st.synced = st.size
		st.nsCommitted = true
	}
	return nil
}

func (f *simFile) Close() error {
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	if err := f.s.gate("close", f.path); err != nil {
		// Power is off: release the handle so the test host does not leak
		// descriptors, but report the crash.
		f.f.Close()
		return err
	}
	return f.f.Close()
}

// Materialize writes the post-crash disk image under variant v into dst
// (created as needed): what a recovery process would find when the machine
// comes back. The live tree is untouched, so several variants can be
// rendered from one crashed Sim.
func (s *Sim) Materialize(dst string, v Variant) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	emit := func(path string, data []byte) error {
		rel, err := filepath.Rel(s.root, path)
		if err != nil || strings.HasPrefix(rel, "..") {
			return fmt.Errorf("crashfs: %s is outside the simulated root %s", path, s.root)
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	}

	var live []string
	err := filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			live = append(live, path)
		}
		return nil
	})
	if err != nil {
		return err
	}
	sort.Strings(live)

	for _, path := range live {
		st, tracked := s.files[path]
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if !tracked || v == Flushed {
			// Untracked files predate the simulator: fully durable.
			if err := emit(path, data); err != nil {
				return err
			}
			continue
		}
		switch v {
		case Torn:
			cut := st.synced + (int64(len(data))-st.synced+1)/2
			if cut > int64(len(data)) {
				cut = int64(len(data))
			}
			if err := emit(path, data[:cut]); err != nil {
				return err
			}
		case Lost:
			if loc, durable := s.durableSnapshot(path, st); loc != "" {
				if err := emit(loc, durable); err != nil {
					return err
				}
			}
			if !st.nsCommitted && st.replaced != nil {
				if err := emit(path, st.replaced); err != nil {
					return err
				}
			}
		}
	}
	if v == Lost {
		for path, data := range s.tombs {
			if err := emit(path, data); err != nil {
				return err
			}
		}
	}
	return nil
}
