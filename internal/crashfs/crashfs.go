// Package crashfs is the crash-consistency torture layer under every
// persistence path in the repository: a small filesystem interface (create,
// write, sync, close, rename, remove, read, directory sync) with two
// implementations — the real OS, and a power-failure simulator that counts
// every durability-relevant operation, kills the power at a chosen one, and
// then materializes what a journaling filesystem would actually have on disk
// after the crash.
//
// The model distinguishes three kinds of durability:
//
//   - File DATA is durable only up to the last fsync. Bytes written after it
//     may survive in full (the kernel wrote them back), as a torn prefix, or
//     not at all.
//   - An fsync also makes the file's directory entry at its CURRENT path
//     durable (the ext4/xfs behavior every atomic-rename scheme relies on).
//   - NAMESPACE operations — a rename into place, a remove — are durable
//     only once the parent directory has been fsynced. Until then a crash
//     can expose the pre-rename world: the published name still holds the
//     old artifact and the temp file survives as debris.
//
// Materialize renders a crashed image under each of three variants (Lost,
// Torn, Flushed — see Variant), so a recovery path is exercised against the
// full range of states one power cut can leave. The Torture driver
// enumerates every operation of a recorded write sequence as a crash point.
//
// The simulator assumes append-only writes (every persistence path in this
// repository creates a fresh temp file and never seeks backwards), and it is
// exact for the create→write→fsync→rename→dirsync discipline those paths
// follow.
package crashfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the writable-file surface persistence paths use. The OS
// implementation wraps *os.File.
type File interface {
	io.Writer
	// Name returns the file's path.
	Name() string
	// Chmod sets the file mode.
	Chmod(mode os.FileMode) error
	// Sync flushes the file's data to stable storage. After a successful
	// Sync the content written so far survives any crash.
	Sync() error
	// Close closes the file. Close does NOT imply durability.
	Close() error
}

// FS is the filesystem surface the persistence subsystems write through:
// internal/atomicio, the synth columnar spill, the cluster checkpoints and
// result cache, and the run manifest all take one, so a single fault
// injector underneath them can power-fail any operation.
type FS interface {
	// MkdirAll creates a directory path with all missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// Create creates (or truncates) the named file.
	Create(name string) (File, error)
	// CreateTemp creates a uniquely-named file in dir (os.CreateTemp
	// pattern semantics).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath. Durable only after
	// SyncDir on the parent directory.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// ReadFile reads the named file in full.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the named directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs a directory, committing the renames, creates, and
	// removes inside it. Implementations may treat it as best-effort on
	// filesystems that reject directory fsync.
	SyncDir(dir string) error
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the real-filesystem implementation of FS.
func OS() FS { return osFS{} }

// osFile wraps *os.File; OSFile exposes the underlying handle for callers
// that need the concrete type (atomicio's legacy WriteTo signature).
type osFile struct{ f *os.File }

func (w osFile) Write(p []byte) (int, error)  { return w.f.Write(p) }
func (w osFile) Name() string                 { return w.f.Name() }
func (w osFile) Chmod(mode os.FileMode) error { return w.f.Chmod(mode) }
func (w osFile) Sync() error                  { return w.f.Sync() }
func (w osFile) Close() error                 { return w.f.Close() }

// OSFile returns the wrapped *os.File.
func (w osFile) OSFile() *os.File { return w.f }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// SyncDir on the real filesystem is best effort: some filesystems (and all
// of Windows) reject directory fsync, and rename atomicity does not depend
// on it.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	d.Sync()
	d.Close()
	return nil
}
