package crashfs

import (
	"fmt"
	"os"
)

// Image is one materialized crash state handed to a Torture verifier.
type Image struct {
	// Dir is the root of the post-crash disk image.
	Dir string
	// Op is the index of the power-failed op (TotalOps = no crash: the
	// clean-completion control point).
	Op int
	// TotalOps is the length of the recorded op schedule.
	TotalOps int
	// FailedOp describes the op the power failure struck.
	FailedOp string
	// Variant is the durability variant rendered in Dir.
	Variant Variant
}

// Torture enumerates every persistence op of a write sequence as a crash
// point, materializes each crash under every durability variant, and runs
// the recovery verifier against the image.
type Torture struct {
	// Setup pre-seeds the root before the simulator attaches (plain os
	// writes; everything it creates is treated as fully durable). Optional.
	Setup func(root string) error
	// Write performs the persistence sequence under test through fsys. It
	// runs once per crash point; a run whose power fails mid-sequence is
	// expected to return an error (or swallow it, for best-effort paths) —
	// Torture does not require either.
	Write func(fsys FS, root string) error
	// Verify asserts the recovery contract against one crash image. A
	// non-nil error fails the torture run with the image's coordinates.
	Verify func(img Image) error
	// Variants overrides the durability sweep (default: Lost, Torn,
	// Flushed).
	Variants []Variant
}

// Run executes the torture: one recording pass to enumerate the op
// schedule, then every (crash point, variant) pair — including the
// no-crash control point — each verified. It returns the number of crash
// points and images verified.
func (t Torture) Run() (points, images int, err error) {
	variants := t.Variants
	if len(variants) == 0 {
		variants = Variants
	}
	total, err := t.record()
	if err != nil {
		return 0, 0, err
	}
	for k := 0; k <= total; k++ {
		n, err := t.crashPoint(k, total, variants)
		images += n
		if err != nil {
			return points, images, err
		}
		points++
	}
	return points, images, nil
}

// record runs the write sequence with the power on to enumerate the op
// schedule.
func (t Torture) record() (int, error) {
	root, err := os.MkdirTemp("", "crashfs-record-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(root)
	if t.Setup != nil {
		if err := t.Setup(root); err != nil {
			return 0, fmt.Errorf("crashfs: torture setup: %w", err)
		}
	}
	sim := NewSim(root, -1)
	if err := t.Write(sim, root); err != nil {
		return 0, fmt.Errorf("crashfs: recording pass failed: %w", err)
	}
	n := sim.OpCount()
	if n == 0 {
		return 0, fmt.Errorf("crashfs: write sequence performed no persistence ops")
	}
	return n, nil
}

// crashPoint runs the write with power failing at op k and verifies every
// variant's image.
func (t Torture) crashPoint(k, total int, variants []Variant) (images int, err error) {
	root, err := os.MkdirTemp("", "crashfs-live-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(root)
	if t.Setup != nil {
		if err := t.Setup(root); err != nil {
			return 0, fmt.Errorf("crashfs: torture setup: %w", err)
		}
	}
	crashAt := k
	if k == total {
		crashAt = -1 // the clean-completion control point
	}
	sim := NewSim(root, crashAt)
	werr := t.Write(sim, root)
	failed := "none (completed)"
	if k < total {
		if !sim.Crashed() {
			return 0, fmt.Errorf("crashfs: op schedule shrank: crash point %d never reached (%d ops this run, %d recorded)",
				k, sim.OpCount(), total)
		}
		failed = sim.Ops()[k].String()
	} else if werr != nil {
		return 0, fmt.Errorf("crashfs: control run (no crash) failed: %w", werr)
	}
	for _, v := range variants {
		dst, err := os.MkdirTemp("", "crashfs-img-")
		if err != nil {
			return images, err
		}
		img := Image{Dir: dst, Op: k, TotalOps: total, FailedOp: failed, Variant: v}
		verr := sim.Materialize(dst, v)
		if verr == nil {
			verr = t.Verify(img)
		}
		os.RemoveAll(dst)
		if verr != nil {
			return images, fmt.Errorf("crash at op %d/%d (%s), variant %s: %w",
				k, total, failed, v, verr)
		}
		images++
	}
	return images, nil
}
