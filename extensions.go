package ibsim

import "ibsim/internal/experiments"

// Extension and ablation studies: the paper's named future work
// (non-sequential prefetching, multi-issue impact), the software methods its
// related-work section surveys (profile-guided placement, OS page
// allocation), and design-choice ablations (victim caches, sub-block
// allocation, replacement policy, TLB reach).

// Extension/ablation result types, re-exported.
type (
	// VictimResult compares victim caches against associativity.
	VictimResult = experiments.VictimResult
	// MultiStreamResult evaluates multi-way stream buffers.
	MultiStreamResult = experiments.MultiStreamResult
	// IssueWidthResult quantifies the fetch floor at wider issue.
	IssueWidthResult = experiments.IssueWidthResult
	// TLBResult sweeps TLB reach under IBS.
	TLBResult = experiments.TLBResult
	// PlacementResult measures profile-guided procedure placement.
	PlacementResult = experiments.PlacementResult
	// SubBlockResult compares sector allocation with small-line prefetch.
	SubBlockResult = experiments.SubBlockResult
	// PagePolicyResult compares physical-page allocation policies.
	PagePolicyResult = experiments.PagePolicyResult
	// ReplacementResult compares cache replacement policies.
	ReplacementResult = experiments.ReplacementResult
	// MethodologyResult validates the independent-levels approximation.
	MethodologyResult = experiments.MethodologyResult
	// SamplingResult quantifies sampled-simulation error.
	SamplingResult = experiments.SamplingResult
	// CMLResult compares CML buffers against associativity and coloring.
	CMLResult = experiments.CMLResult
	// UnifiedL2Result quantifies unified-L2 data interference.
	UnifiedL2Result = experiments.UnifiedL2Result
	// AssocLatencyResult weighs L2 associativity against lookup latency.
	AssocLatencyResult = experiments.AssocLatencyResult
	// InterleaveResult sweeps domain-interleaving granularity.
	InterleaveResult = experiments.InterleaveResult
	// SPECContrastResult is the paper's closing SPEC counterfactual.
	SPECContrastResult = experiments.SPECContrastResult
	// DualPortResult compares dual-porting with raw bandwidth.
	DualPortResult = experiments.DualPortResult
	// WriteBufferResult sweeps write-buffer depth.
	WriteBufferResult = experiments.WriteBufferResult
	// PredictResult evaluates non-sequential (predictor-guided) prefetch.
	PredictResult = experiments.PredictResult
)

// ExtensionVictim sweeps victim-cache sizes against L1 associativity.
func ExtensionVictim(opt Options) (*VictimResult, error) {
	return experiments.ExtensionVictim(opt)
}

// ExtensionMultiStream sweeps multi-way stream buffer configurations.
func ExtensionMultiStream(opt Options) (*MultiStreamResult, error) {
	return experiments.ExtensionMultiStream(opt)
}

// ExtensionIssueWidth computes the fetch-stall share at 1/2/4-wide issue.
func ExtensionIssueWidth(opt Options) (*IssueWidthResult, error) {
	return experiments.ExtensionIssueWidth(opt)
}

// ExtensionTLB sweeps TLB entries and associativity under IBS.
func ExtensionTLB(opt Options) (*TLBResult, error) {
	return experiments.ExtensionTLB(opt)
}

// ExtensionPlacement compares scattered vs profile-guided code layout.
func ExtensionPlacement(opt Options) (*PlacementResult, error) {
	return experiments.ExtensionPlacement(opt)
}

// AblationSubBlock compares 64-B/16-B sector allocation with 16-B lines plus
// prefetch (the paper's Section 5.2 footnote).
func AblationSubBlock(opt Options) (*SubBlockResult, error) {
	return experiments.AblationSubBlock(opt)
}

// AblationPagePolicy compares physical-page allocation policies in a
// physically-indexed cache.
func AblationPagePolicy(opt Options) (*PagePolicyResult, error) {
	return experiments.AblationPagePolicy(opt)
}

// AblationReplacement compares LRU, FIFO and random replacement.
func AblationReplacement(opt Options) (*ReplacementResult, error) {
	return experiments.AblationReplacement(opt)
}

// MethodologyValidation compares the paper's independent-levels CPI
// decomposition against a combined two-level hierarchy simulation.
func MethodologyValidation(opt Options) (*MethodologyResult, error) {
	return experiments.MethodologyValidation(opt)
}

// SamplingStudy quantifies warm- and cold-sampling estimation error.
func SamplingStudy(opt Options) (*SamplingResult, error) {
	return experiments.SamplingStudy(opt)
}

// ExtensionCML compares CML-buffer page recoloring against associativity
// and page-coloring allocation (the paper's Figure 5 discussion).
func ExtensionCML(opt Options) (*CMLResult, error) {
	return experiments.ExtensionCML(opt)
}

// ExtensionUnifiedL2 measures the instruction-side cost of sharing the L2
// with data references (the paper's "lower bound" caveat).
func ExtensionUnifiedL2(opt Options) (*UnifiedL2Result, error) {
	return experiments.ExtensionUnifiedL2(opt)
}

// ExtensionAssocLatency weighs L2 associativity against the +1-cycle lookup
// penalty (the paper's Section 5.1 footnote).
func ExtensionAssocLatency(opt Options) (*AssocLatencyResult, error) {
	return experiments.ExtensionAssocLatency(opt)
}

// ExtensionInterleave sweeps domain-interleaving granularity (the
// Mach-vs-Ultrix structural knob).
func ExtensionInterleave(opt Options) (*InterleaveResult, error) {
	return experiments.ExtensionInterleave(opt)
}

// SPECContrast reproduces the paper's closing counterfactual: the memory
// system SPEC92 would have designed.
func SPECContrast(opt Options) (*SPECContrastResult, error) {
	return experiments.SPECContrast(opt)
}

// ExtensionDualPort compares a dual-ported cache against raw bandwidth (the
// Figure 6 aside).
func ExtensionDualPort(opt Options) (*DualPortResult, error) {
	return experiments.ExtensionDualPort(opt)
}

// AblationWriteBuffer sweeps the DECstation write-buffer depth.
func AblationWriteBuffer(opt Options) (*WriteBufferResult, error) {
	return experiments.AblationWriteBuffer(opt)
}

// ExtensionPredict evaluates next-line-predictor-guided (non-sequential)
// prefetching against the sequential stream — the paper's named future work.
// See the result type's documentation for the honest negative finding on
// synthetic traces.
func ExtensionPredict(opt Options) (*PredictResult, error) {
	return experiments.ExtensionPredict(opt)
}
