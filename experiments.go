package ibsim

import "ibsim/internal/experiments"

// Experiment constructors: one per table and figure of the paper's
// evaluation section. Each returns a structured result with a Render method
// producing an aligned text table; cmd/ibstables is a thin wrapper.

// Experiment result types, re-exported.
type (
	// Table1Result is the SPEC memory-CPI characterization.
	Table1Result = experiments.Table1Result
	// Table3Result is the IBS vs SPEC memory-CPI characterization.
	Table3Result = experiments.Table3Result
	// Table4Result is the per-workload IBS MPI table.
	Table4Result = experiments.Table4Result
	// Table5Result holds the baseline CPIinstr values.
	Table5Result = experiments.Table5Result
	// Table6Result is the sequential prefetch-on-miss grid.
	Table6Result = experiments.Table6Result
	// Table7Result is the prefetch+bypass grid.
	Table7Result = experiments.Table7Result
	// Table8Result is the pipelined stream-buffer sweep.
	Table8Result = experiments.Table8Result
	// Figure1Result is the Three-Cs decomposition across cache sizes.
	Figure1Result = experiments.Figure1Result
	// Figure3Result is the L2 size × line-size sweep.
	Figure3Result = experiments.Figure3Result
	// Figure4Result is the L2 associativity sweep.
	Figure4Result = experiments.Figure4Result
	// Figure5Result is the page-mapping variability study.
	Figure5Result = experiments.Figure5Result
	// Figure6Result is the L1 line-size × bandwidth sweep.
	Figure6Result = experiments.Figure6Result
	// Figure7Result is the cumulative-optimization summary.
	Figure7Result = experiments.Figure7Result
)

// Table1 reproduces "Memory System Performance of the SPEC Benchmarks".
func Table1(opt Options) (*Table1Result, error) { return experiments.Table1(opt) }

// Table2 renders the IBS workload inventory (descriptive).
func Table2() string { return experiments.Table2() }

// Table3 reproduces "Memory Performance of the IBS Workloads".
func Table3(opt Options) (*Table3Result, error) { return experiments.Table3(opt) }

// Table4 reproduces "Detailed I-cache Performance of the IBS Workloads".
func Table4(opt Options) (*Table4Result, error) { return experiments.Table4(opt) }

// Table5 reproduces "CPIinstr for Base System Configurations".
func Table5(opt Options) (*Table5Result, error) { return experiments.Table5(opt) }

// Table6 reproduces "Prefetching".
func Table6(opt Options) (*Table6Result, error) { return experiments.Table6(opt) }

// Table7 reproduces "Prefetching + Bypassing".
func Table7(opt Options) (*Table7Result, error) { return experiments.Table7(opt) }

// Table8 reproduces "Pipelined System with a Stream Buffer".
func Table8(opt Options) (*Table8Result, error) { return experiments.Table8(opt) }

// Figure1 reproduces "Capacity and Conflict Misses in SPEC92 and IBS".
func Figure1(opt Options) (*Figure1Result, error) { return experiments.Figure1(opt) }

// Figure2 renders the workload component structure (descriptive).
func Figure2() string { return experiments.Figure2() }

// Figure3 reproduces "Total CPIinstr vs. L2 Line Size".
func Figure3(opt Options) (*Figure3Result, error) { return experiments.Figure3(opt) }

// Figure4 reproduces "CPIinstr vs. L2 Associativity".
func Figure4(opt Options) (*Figure4Result, error) { return experiments.Figure4(opt) }

// Figure5 reproduces "Variability in CPIinstr versus I-cache Size and
// Associativity".
func Figure5(opt Options) (*Figure5Result, error) { return experiments.Figure5(opt) }

// Figure6 reproduces "Bandwidth and L1 CPIinstr vs. Line Size".
func Figure6(opt Options) (*Figure6Result, error) { return experiments.Figure6(opt) }

// Figure7 reproduces "Summary of L1 and L2 Cache Optimizations".
func Figure7(opt Options) (*Figure7Result, error) { return experiments.Figure7(opt) }
