package ibsim

import (
	"ibsim/internal/locality"
	"ibsim/internal/trace"
)

// LocalityAnalysis accumulates the locality statistics that determine cache
// behavior: LRU stack-distance histograms (yielding the miss ratio of any
// fully-associative LRU cache size in one pass), working-set sizes,
// sequential run lengths, and per-domain code footprints.
type LocalityAnalysis = locality.Analysis

// AnalyzeLocality characterizes a reference stream (instruction fetches
// only) at the given line granularity.
func AnalyzeLocality(refs []Ref, lineSize int) (*LocalityAnalysis, error) {
	return locality.Analyze(lineSize, trace.NewSliceSource(refs))
}

// AnalyzeWorkloadLocality generates n instructions of w and characterizes
// them.
func AnalyzeWorkloadLocality(w Workload, lineSize int, n int64) (*LocalityAnalysis, error) {
	refs, err := GenerateInstructionTrace(w, n)
	if err != nil {
		return nil, err
	}
	return AnalyzeLocality(refs, lineSize)
}
