package main

import (
	"strings"
	"testing"

	"ibsim"
)

func TestFetchReport(t *testing.T) {
	w, err := ibsim.LoadWorkload("eqntott")
	if err != nil {
		t.Fatal(err)
	}
	out, err := fetchReport(w, ibsim.FetchConfig{
		L1:                ibsim.CacheConfig{Size: 8192, LineSize: 16, Assoc: 1},
		Link:              ibsim.OnChipL2Link(),
		StreamBufferLines: 6,
	}, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"eqntott", "stream buffer", "CPIinstr", "stream-buffer hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("fetch report missing %q:\n%s", want, out)
		}
	}
	// Blocking variant names its engine and prefetch.
	out, err = fetchReport(w, ibsim.FetchConfig{
		L1:            ibsim.CacheConfig{Size: 8192, LineSize: 32, Assoc: 1},
		Link:          ibsim.OnChipL2Link(),
		PrefetchLines: 2,
	}, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "prefetch 2 lines") {
		t.Errorf("blocking report malformed:\n%s", out)
	}
	// Bad geometry propagates as an error.
	if _, err := fetchReport(w, ibsim.FetchConfig{
		L1:   ibsim.CacheConfig{Size: 7},
		Link: ibsim.OnChipL2Link(),
	}, 100); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestSystemReport(t *testing.T) {
	w, _ := ibsim.LoadWorkload("sdet")
	out, err := systemReport(w, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DECstation 3100", "I-cache", "CPIwrite", "% user"} {
		if !strings.Contains(out, want) {
			t.Errorf("system report missing %q:\n%s", want, out)
		}
	}
}
