// Command ibsim simulates one workload against one memory-system
// configuration and prints the result.
//
// Usage:
//
//	ibsim -workload gs -size 8192 -line 32 -assoc 1 -n 2000000
//	ibsim -workload verilog -latency 6 -bandwidth 16 -prefetch 3 -bypass
//	ibsim -workload sdet -stream 6 -line 16 -bandwidth 16
//	ibsim -workload gs -system          # DECstation 3100 whole-system CPI
//	ibsim -list                          # available workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ibsim"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available workloads and exit")
		workload = flag.String("workload", "gs", "workload name (see -list)")
		n        = flag.Int64("n", 2_000_000, "instructions to simulate")
		size     = flag.Int("size", 8192, "I-cache size in bytes")
		line     = flag.Int("line", 32, "I-cache line size in bytes")
		assoc    = flag.Int("assoc", 1, "I-cache associativity (0 = fully associative)")
		latency  = flag.Int("latency", 6, "miss latency to next level (cycles)")
		bw       = flag.Int("bandwidth", 16, "transfer bandwidth (bytes/cycle)")
		prefetch = flag.Int("prefetch", 0, "sequential prefetch-on-miss lines")
		bypass   = flag.Bool("bypass", false, "enable bypass buffers")
		stream   = flag.Int("stream", 0, "stream-buffer lines (pipelined engine)")
		system   = flag.Bool("system", false, "run the DECstation 3100 whole-system model instead")
	)
	flag.Parse()

	if *list {
		for _, name := range ibsim.Workloads() {
			w, _ := ibsim.LoadWorkload(name)
			fmt.Printf("%-20s %s\n", name, w.Description)
		}
		return
	}

	if *n <= 0 {
		fmt.Fprintf(os.Stderr, "ibsim: -n %d: instruction count must be positive\n", *n)
		os.Exit(2)
	}

	w, err := ibsim.LoadWorkload(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibsim:", err)
		os.Exit(1)
	}

	var report string
	if *system {
		report, err = systemReport(w, *n)
	} else {
		fc := ibsim.FetchConfig{
			L1:                ibsim.CacheConfig{Size: *size, LineSize: *line, Assoc: *assoc},
			Link:              ibsim.Transfer{Latency: *latency, BytesPerCycle: *bw},
			PrefetchLines:     *prefetch,
			Bypass:            *bypass,
			StreamBufferLines: *stream,
		}
		report, err = fetchReport(w, fc, *n)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibsim:", err)
		os.Exit(1)
	}
	fmt.Print(report)
}

// systemReport runs the DECstation 3100 whole-system model and formats its
// CPI breakdown.
func systemReport(w ibsim.Workload, n int64) (string, error) {
	comp, userShare, err := ibsim.SimulateSystem(w, n)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s on DECstation 3100 (%d instructions):\n", w.Name, n)
	fmt.Fprintf(&b, "  execution: %.0f%% user / %.0f%% OS\n", userShare*100, (1-userShare)*100)
	fmt.Fprintf(&b, "  total memory CPI: %.3f\n", comp.Total())
	fmt.Fprintf(&b, "    I-cache (CPIinstr): %.3f\n", comp.Instr)
	fmt.Fprintf(&b, "    D-cache (CPIdata):  %.3f\n", comp.Data)
	fmt.Fprintf(&b, "    TLB (CPItlb):       %.3f\n", comp.TLB)
	fmt.Fprintf(&b, "    CPU (CPIwrite):     %.3f\n", comp.Write)
	return b.String(), nil
}

// fetchReport runs one fetch-engine configuration and formats its result.
func fetchReport(w ibsim.Workload, fc ibsim.FetchConfig, n int64) (string, error) {
	res, err := ibsim.SimulateFetch(w, fc, n)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s, L1 %s, link %s:\n", w.Name, fc.L1, fc.Link)
	if fc.StreamBufferLines > 0 {
		fmt.Fprintf(&b, "  engine: pipelined, %d-line stream buffer\n", fc.StreamBufferLines)
	} else {
		fmt.Fprintf(&b, "  engine: blocking, prefetch %d lines, bypass %v\n", fc.PrefetchLines, fc.Bypass)
	}
	fmt.Fprintf(&b, "  instructions: %d\n", res.Instructions)
	fmt.Fprintf(&b, "  misses:       %d (%.2f per 100 instructions)\n", res.Misses, 100*res.MPI())
	if res.BufferHits > 0 {
		fmt.Fprintf(&b, "  stream-buffer hits: %d\n", res.BufferHits)
	}
	fmt.Fprintf(&b, "  CPIinstr:     %.3f\n", res.CPIinstr())
	return b.String(), nil
}
