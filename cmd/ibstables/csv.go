package main

import (
	"strings"
)

// toCSV converts the renderer's aligned-text tables to CSV. The text format
// is stable: a title line, a header row, a dashed rule, then body rows, with
// columns separated by runs of two or more spaces (single spaces only ever
// occur *inside* a cell). Multiple tables in one exhibit are separated by
// blank lines; each becomes its own CSV block prefixed with a "# title"
// comment.
func toCSV(text string) string {
	var out strings.Builder
	lines := strings.Split(text, "\n")
	for i, line := range lines {
		trimmed := strings.TrimRight(line, " ")
		switch {
		case trimmed == "":
			continue
		case strings.HasPrefix(trimmed, "---"):
			continue
		case isTitle(lines, i):
			if out.Len() > 0 {
				out.WriteString("\n")
			}
			out.WriteString("# " + trimmed + "\n")
		default:
			out.WriteString(joinCSV(splitCells(trimmed)))
			out.WriteString("\n")
		}
	}
	return out.String()
}

// isTitle reports whether lines[i] is a table title: the line after the next
// line is a dashed rule (title, header, rule), or the line itself precedes a
// header+rule pair. Titles are also the only lines not followed directly by
// a rule but by a header that is.
func isTitle(lines []string, i int) bool {
	// A title is a line whose line+2 is a rule (title, header, ----) .
	if i+2 < len(lines) && strings.HasPrefix(lines[i+2], "---") {
		// ...and the line itself is not the header (the header is the line
		// directly above the rule).
		return !strings.HasPrefix(lines[i+1], "---")
	}
	return false
}

// splitCells splits an aligned row on runs of two or more spaces.
func splitCells(line string) []string {
	var cells []string
	var cur strings.Builder
	spaces := 0
	for _, r := range line {
		if r == ' ' {
			spaces++
			continue
		}
		if spaces >= 2 && cur.Len() > 0 {
			cells = append(cells, cur.String())
			cur.Reset()
		} else if spaces == 1 && cur.Len() > 0 {
			cur.WriteByte(' ')
		}
		spaces = 0
		cur.WriteRune(r)
	}
	if cur.Len() > 0 {
		cells = append(cells, cur.String())
	}
	return cells
}

// joinCSV renders cells as one CSV record (RFC-4180 quoting).
func joinCSV(cells []string) string {
	var b strings.Builder
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	return b.String()
}
