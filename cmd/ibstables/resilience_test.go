package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain lets the test binary impersonate the real CLI: re-exec'd with
// IBSTABLES_BE_MAIN=1 it runs main() instead of the tests, so the
// interrupt/resume tests exercise the genuine signal handling and exit
// codes without a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("IBSTABLES_BE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// selfCmd builds a re-exec'd ibstables invocation.
func selfCmd(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "IBSTABLES_BE_MAIN=1")
	return cmd
}

// exitCode extracts the exit status from Run/Wait's error.
func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !isExitError(err, &ee) {
		t.Fatalf("process failed without exit status: %v", err)
	}
	return ee.ExitCode()
}

func isExitError(err error, out **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*out = ee
	}
	return ok
}

// A SIGINT mid-run exits 130 promptly with the completed exhibits
// checkpointed, and rerunning with the same manifest resumes to a final
// output byte-identical to an uninterrupted run.
func TestInterruptThenResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns multi-second child runs")
	}
	dir := t.TempDir()
	manifestDir := filepath.Join(dir, "run")
	resumedOut := filepath.Join(dir, "resumed.txt")
	args := []string{
		"-experiment", "table4,figure5,table3", "-n", "150000", "-trials", "2",
		"-manifest", manifestDir, "-o", resumedOut, "-q",
	}

	// Launch, wait for the first checkpoint, interrupt.
	cmd := selfCmd(t, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	cmd.Stdout = new(bytes.Buffer)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	first := filepath.Join(manifestDir, "table4.out")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(first); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("no checkpoint appeared; stderr:\n%s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	var werr error
	select {
	case werr = <-waited:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("interrupted run did not shut down")
	}
	if code := exitCode(t, werr); code != 130 {
		t.Fatalf("interrupted run exited %d, want 130; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Fatalf("interrupt not reported; stderr:\n%s", stderr.String())
	}
	if _, err := os.Stat(resumedOut); err == nil {
		t.Fatal("interrupted run wrote the -o file")
	}

	// Resume to completion.
	resume := selfCmd(t, args...)
	var resumeErr bytes.Buffer
	resume.Stderr = &resumeErr
	resume.Stdout = new(bytes.Buffer)
	if err := resume.Run(); err != nil {
		t.Fatalf("resumed run failed: %v; stderr:\n%s", err, resumeErr.String())
	}
	if !strings.Contains(resumeErr.String(), "resuming") {
		t.Fatalf("resume did not pick up checkpoints; stderr:\n%s", resumeErr.String())
	}

	// A fresh, uninterrupted run must produce byte-identical output.
	freshOut := filepath.Join(dir, "fresh.txt")
	fresh := selfCmd(t, "-experiment", "table4,figure5,table3", "-n", "150000", "-trials", "2",
		"-manifest", filepath.Join(dir, "fresh-run"), "-o", freshOut, "-q")
	fresh.Stdout, fresh.Stderr = new(bytes.Buffer), new(bytes.Buffer)
	if err := fresh.Run(); err != nil {
		t.Fatalf("fresh run failed: %v", err)
	}
	got, err := os.ReadFile(resumedOut)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(freshOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed output differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
}

// A per-exhibit timeout fails that exhibit without aborting the process
// wholesale, and the deadline expiry is reported with its own typed exit
// code (124, the timeout(1) convention) instead of folding into the generic
// error exit.
func TestPerExhibitTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child run")
	}
	cmd := selfCmd(t, "-experiment", "table4,table2", "-n", "2000000", "-timeout", "1ms", "-q")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	cmd.Stdout = new(bytes.Buffer)
	err := cmd.Run()
	if code := exitCode(t, err); code != 124 {
		t.Fatalf("exit = %d, want 124; stderr:\n%s", code, stderr.String())
	}
	// table4 blew its budget; descriptive table2 still completed.
	if !strings.Contains(stderr.String(), "table4 exceeded its 1ms budget") {
		t.Fatalf("timeout not attributed; stderr:\n%s", stderr.String())
	}
	if strings.Contains(stderr.String(), "table2") {
		t.Fatalf("descriptive exhibit dragged into the failure; stderr:\n%s", stderr.String())
	}
}
