package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ibsim"
)

var updateGolden = flag.Bool("update", false, "rewrite the CSV golden files in testdata/")

// csvGoldenCases drives toCSV over representative renderer outputs. Inputs
// mirror renderTable's stable text format: title line, header row, dashed
// rule, aligned body rows; columns separated by two or more spaces.
var csvGoldenCases = []struct {
	name   string
	golden string
	input  string
}{
	{
		name:   "simple",
		golden: "simple.csv",
		input: "Table X: A small exhibit\n" +
			"Benchmark  CPI    MPI\n" +
			"---------------------\n" +
			"gs         0.338  0.048\n" +
			"verilog    0.251  0.036\n",
	},
	{
		name:   "numeric-formats",
		golden: "numeric.csv",
		input: "Table Y: Numeric formatting survives\n" +
			"Size   Ratio   Pct   Sci\n" +
			"------------------------\n" +
			"8KB    0.048   5%    1.5e-09\n" +
			"128KB  0.016   2%    -0.25\n",
	},
	{
		name:   "quoting",
		golden: "quoting.csv",
		input: "Table Z: Cells needing RFC-4180 quoting\n" +
			"Config           Note\n" +
			"---------------------\n" +
			"8KB/32B/direct   plain cell\n" +
			"a,b              has \"quotes\", and commas\n",
	},
	{
		name:   "multi-table",
		golden: "multi.csv",
		input: "Table A: First block\n" +
			"Col1  Col2\n" +
			"----------\n" +
			"1     2\n" +
			"\n" +
			"Table B: Second block\n" +
			"ColA  ColB  ColC\n" +
			"----------------\n" +
			"x     y     z\n",
	},
}

// TestToCSVGolden pins toCSV's output byte for byte against committed golden
// files (regenerate with `go test ./cmd/ibstables -run Golden -update`).
func TestToCSVGolden(t *testing.T) {
	for _, tc := range csvGoldenCases {
		t.Run(tc.name, func(t *testing.T) {
			got := toCSV(tc.input)
			path := filepath.Join("testdata", tc.golden)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden missing (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("toCSV output drifted from %s:\n--- got\n%s--- want\n%s", path, got, want)
			}
		})
	}
}

// TestToCSVStructure checks the structural contract independent of goldens:
// one comment line per title, a header row, and a constant column count per
// block.
func TestToCSVStructure(t *testing.T) {
	for _, tc := range csvGoldenCases {
		t.Run(tc.name, func(t *testing.T) {
			got := toCSV(tc.input)
			var cols int
			for _, line := range strings.Split(strings.TrimSuffix(got, "\n"), "\n") {
				switch {
				case line == "":
					cols = 0 // block break
				case strings.HasPrefix(line, "# "):
					cols = 0 // title; next line is the header
				default:
					n := len(splitCSVRecord(line))
					if cols == 0 {
						cols = n // header row fixes the block's width
					} else if n != cols {
						t.Errorf("row %q has %d columns, header had %d", line, n, cols)
					}
				}
			}
		})
	}
}

// splitCSVRecord splits one CSV record, honoring RFC-4180 quotes.
func splitCSVRecord(line string) []string {
	var fields []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			fields = append(fields, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	return append(fields, cur.String())
}

// TestToCSVRealExhibit feeds a real rendered exhibit through toCSV: no body
// row may be wider than the header (summary rows like "Average" legitimately
// span fewer columns), and per-workload rows must match it exactly.
func TestToCSVRealExhibit(t *testing.T) {
	res, err := ibsim.Table4(ibsim.Options{Instructions: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	got := toCSV(res.Render())
	lines := strings.Split(strings.TrimSuffix(got, "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("CSV too short:\n%s", got)
	}
	if !strings.HasPrefix(lines[0], "# ") {
		t.Errorf("first line is not a title comment: %q", lines[0])
	}
	header := splitCSVRecord(lines[1])
	if len(header) < 2 {
		t.Fatalf("header has %d columns: %q", len(header), lines[1])
	}
	full := 0
	for _, line := range lines[2:] {
		n := len(splitCSVRecord(line))
		if n > len(header) {
			t.Errorf("row %q has %d columns, header has only %d", line, n, len(header))
		}
		if n == len(header) {
			full++
		}
	}
	if full == 0 {
		t.Errorf("no body row matches the header's %d columns:\n%s", len(header), got)
	}
}
