// Command ibstables regenerates the paper's tables and figures.
//
// Usage:
//
//	ibstables                         # everything
//	ibstables -experiment table4      # one exhibit
//	ibstables -experiment table1,figure3
//	ibstables -n 4000000 -trials 5    # scale the simulation
//	ibstables -manifest run/ -o all.txt
//
// Experiments: table1 table2 table3 table4 table5 table6 table7 table8
// figure1 figure2 figure3 figure4 figure5 figure6 figure7 all
//
// The run is resilient: SIGINT/SIGTERM cancels in-flight workers and exits
// 130, a failing or timed-out exhibit is reported and skipped instead of
// aborting the rest, and with -manifest every completed exhibit is
// checkpointed atomically so an interrupted run resumes where it stopped
// and produces byte-identical final output.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"ibsim"
	"ibsim/internal/atomicio"
	"ibsim/internal/manifest"
)

// renderer produces one exhibit's text.
type renderer func(ibsim.Options) (string, error)

// exhibits maps experiment names to their runners, in paper order, followed
// by the extension/ablation studies (not in the paper; run with
// -experiment <name> or -extensions).
var exhibitOrder = []string{
	"table1", "table2", "table3", "table4", "figure1", "figure2",
	"table5", "figure3", "figure4", "figure5", "figure6",
	"table6", "table7", "table8", "figure7",
}

// extensionOrder lists the beyond-the-paper studies.
var extensionOrder = []string{
	"victim", "multistream", "issuewidth", "tlb", "placement",
	"subblock", "pagepolicy", "replacement", "methodology", "sampling",
	"cml", "unifiedl2", "assoclatency", "interleave",
	"speccontrast", "dualport", "writebuffer", "predict",
}

var exhibits = map[string]renderer{
	"table1": func(o ibsim.Options) (string, error) {
		r, err := ibsim.Table1(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"table2": func(ibsim.Options) (string, error) { return ibsim.Table2(), nil },
	"table3": func(o ibsim.Options) (string, error) {
		r, err := ibsim.Table3(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"table4": func(o ibsim.Options) (string, error) {
		r, err := ibsim.Table4(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"table5": func(o ibsim.Options) (string, error) {
		r, err := ibsim.Table5(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"table6": func(o ibsim.Options) (string, error) {
		r, err := ibsim.Table6(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"table7": func(o ibsim.Options) (string, error) {
		r, err := ibsim.Table7(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"table8": func(o ibsim.Options) (string, error) {
		r, err := ibsim.Table8(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"figure1": func(o ibsim.Options) (string, error) {
		r, err := ibsim.Figure1(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"figure2": func(ibsim.Options) (string, error) { return ibsim.Figure2(), nil },
	"figure3": func(o ibsim.Options) (string, error) {
		r, err := ibsim.Figure3(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"figure4": func(o ibsim.Options) (string, error) {
		r, err := ibsim.Figure4(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"figure5": func(o ibsim.Options) (string, error) {
		r, err := ibsim.Figure5(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"figure6": func(o ibsim.Options) (string, error) {
		r, err := ibsim.Figure6(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"figure7": func(o ibsim.Options) (string, error) {
		r, err := ibsim.Figure7(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"victim": func(o ibsim.Options) (string, error) {
		r, err := ibsim.ExtensionVictim(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"multistream": func(o ibsim.Options) (string, error) {
		r, err := ibsim.ExtensionMultiStream(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"issuewidth": func(o ibsim.Options) (string, error) {
		r, err := ibsim.ExtensionIssueWidth(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"tlb": func(o ibsim.Options) (string, error) {
		r, err := ibsim.ExtensionTLB(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"placement": func(o ibsim.Options) (string, error) {
		r, err := ibsim.ExtensionPlacement(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"subblock": func(o ibsim.Options) (string, error) {
		r, err := ibsim.AblationSubBlock(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"pagepolicy": func(o ibsim.Options) (string, error) {
		r, err := ibsim.AblationPagePolicy(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"replacement": func(o ibsim.Options) (string, error) {
		r, err := ibsim.AblationReplacement(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"methodology": func(o ibsim.Options) (string, error) {
		r, err := ibsim.MethodologyValidation(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"sampling": func(o ibsim.Options) (string, error) {
		r, err := ibsim.SamplingStudy(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"cml": func(o ibsim.Options) (string, error) {
		r, err := ibsim.ExtensionCML(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"unifiedl2": func(o ibsim.Options) (string, error) {
		r, err := ibsim.ExtensionUnifiedL2(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"assoclatency": func(o ibsim.Options) (string, error) {
		r, err := ibsim.ExtensionAssocLatency(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"interleave": func(o ibsim.Options) (string, error) {
		r, err := ibsim.ExtensionInterleave(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"speccontrast": func(o ibsim.Options) (string, error) {
		r, err := ibsim.SPECContrast(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"dualport": func(o ibsim.Options) (string, error) {
		r, err := ibsim.ExtensionDualPort(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"writebuffer": func(o ibsim.Options) (string, error) {
		r, err := ibsim.AblationWriteBuffer(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"predict": func(o ibsim.Options) (string, error) {
		r, err := ibsim.ExtensionPredict(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
}

func main() {
	os.Exit(run())
}

// run carries main's body so profile-writing defers fire before exit.
func run() int {
	which := flag.String("experiment", "all", "comma-separated exhibits to regenerate (table1..table8, figure1..figure7, extension names, all)")
	ext := flag.Bool("extensions", false, "also run the beyond-the-paper extension/ablation studies")
	n := flag.Int64("n", 2_000_000, "instructions simulated per workload")
	trials := flag.Int("trials", 5, "trials for variability experiments (figure5)")
	quiet := flag.Bool("q", false, "suppress progress timing")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	chart := flag.Bool("chart", false, "render figure1/figure7 as ASCII stacked-bar charts (as in the paper)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	manifestDir := flag.String("manifest", "", "checkpoint directory: completed exhibits persist there and an interrupted run resumes from it")
	outFile := flag.String("o", "", "also write the concatenated exhibit outputs to this file (atomically, on full success)")
	timeout := flag.Duration("timeout", 0, "per-exhibit wall-clock budget (0 = unlimited)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibstables: -cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ibstables: -cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ibstables: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ibstables: -memprofile: %v\n", err)
			}
		}()
	}
	if *chart {
		exhibits["figure1"] = func(o ibsim.Options) (string, error) {
			r, err := ibsim.Figure1(o)
			if err != nil {
				return "", err
			}
			return r.RenderChart(), nil
		}
		exhibits["figure7"] = func(o ibsim.Options) (string, error) {
			r, err := ibsim.Figure7(o)
			if err != nil {
				return "", err
			}
			return r.RenderChart(), nil
		}
	}

	opt := ibsim.Options{Instructions: *n, Trials: *trials, Timeout: *timeout}
	names := exhibitOrder
	if *ext {
		names = append(append([]string{}, exhibitOrder...), extensionOrder...)
	}
	if *which != "all" {
		names = nil
		for _, raw := range strings.Split(*which, ",") {
			name := strings.ToLower(strings.TrimSpace(raw))
			if name == "" {
				continue
			}
			if _, ok := exhibits[name]; !ok {
				fmt.Fprintf(os.Stderr, "ibstables: unknown experiment %q (have %s; %s; all)\n",
					raw, strings.Join(exhibitOrder, ", "), strings.Join(extensionOrder, ", "))
				return 2
			}
			names = append(names, name)
		}
		if len(names) == 0 {
			fmt.Fprintln(os.Stderr, "ibstables: -experiment names no exhibit")
			return 2
		}
	}

	var man *manifest.Manifest
	if *manifestDir != "" {
		var resumed int
		var err error
		man, resumed, err = manifest.Open(*manifestDir, manifest.Params{
			Instructions: *n, Trials: *trials, CSV: *csv, Chart: *chart,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibstables: -manifest: %v\n", err)
			return 2
		}
		if resumed > 0 {
			fmt.Fprintf(os.Stderr, "ibstables: resuming: %d exhibit(s) already complete in %s\n", resumed, *manifestDir)
		}
	}

	var outputs []string
	var failed []string
	for _, name := range names {
		if ctx.Err() != nil {
			return interrupted(name, man != nil)
		}
		if man != nil {
			if out, ok := man.Get(name); ok {
				outputs = append(outputs, out)
				fmt.Println(out)
				if !*quiet {
					fmt.Printf("[%s restored from manifest]\n\n", name)
				}
				continue
			}
		}
		start := time.Now()
		ectx := ctx
		cancel := context.CancelFunc(func() {})
		if *timeout > 0 {
			ectx, cancel = context.WithTimeout(ctx, *timeout)
		}
		eopt := opt
		eopt.Context = ectx
		out, err := exhibits[name](eopt)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return interrupted(name, man != nil)
			}
			// One bad exhibit — a worker panic, a timeout, a bad config —
			// fails that exhibit only; the rest of the run proceeds.
			reason := "failed"
			if errors.Is(err, context.DeadlineExceeded) {
				reason = fmt.Sprintf("exceeded its %v budget", *timeout)
			}
			fmt.Fprintf(os.Stderr, "ibstables: %s %s: %v (continuing)\n", name, reason, err)
			failed = append(failed, name)
			continue
		}
		if *csv {
			out = toCSV(out)
		}
		if man != nil {
			if err := man.Put(name, out); err != nil {
				fmt.Fprintf(os.Stderr, "ibstables: checkpointing %s: %v\n", name, err)
				return 1
			}
		}
		outputs = append(outputs, out)
		fmt.Println(out)
		if !*quiet {
			fmt.Printf("[%s regenerated in %.1fs]\n\n", name, time.Since(start).Seconds())
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "ibstables: %d exhibit(s) failed: %s\n", len(failed), strings.Join(failed, ", "))
		return 1
	}
	if *outFile != "" {
		data := []byte(strings.Join(outputs, "\n") + "\n")
		if err := atomicio.WriteFile(*outFile, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ibstables: -o: %v\n", err)
			return 1
		}
	}
	return 0
}

// interrupted reports a SIGINT/SIGTERM shutdown and returns the
// conventional 128+SIGINT exit code.
func interrupted(name string, hasManifest bool) int {
	msg := fmt.Sprintf("ibstables: interrupted during %s", name)
	if hasManifest {
		msg += "; completed exhibits are checkpointed — rerun with the same -manifest to resume"
	}
	fmt.Fprintln(os.Stderr, msg)
	return 130
}
