// Command ibstables regenerates the paper's tables and figures.
//
// Usage:
//
//	ibstables                         # everything
//	ibstables -experiment table4      # one exhibit
//	ibstables -experiment table1,figure3
//	ibstables -n 4000000 -trials 5    # scale the simulation
//	ibstables -manifest run/ -o all.txt
//
// Experiments: table1 table2 table3 table4 table5 table6 table7 table8
// figure1 figure2 figure3 figure4 figure5 figure6 figure7 all
//
// The run is resilient: SIGINT/SIGTERM cancels in-flight workers and exits
// 130, a failing or timed-out exhibit is reported and skipped instead of
// aborting the rest, and with -manifest every completed exhibit is
// checkpointed atomically so an interrupted run resumes where it stopped
// and produces byte-identical final output.
//
// Exit codes are typed so orchestrators can tell failure classes apart:
// 0 success, 1 exhibit failure, 2 usage error, 124 every failure was a
// per-exhibit -timeout expiry, 130 interrupted by SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"ibsim"
	"ibsim/internal/atomicio"
	"ibsim/internal/manifest"
)

// Typed exit codes. exitTimeout follows the timeout(1) convention (124);
// exitInterrupt the shell's 128+SIGINT.
const (
	exitOK        = 0
	exitFailure   = 1
	exitUsage     = 2
	exitTimeout   = 124
	exitInterrupt = 130
)

func main() {
	os.Exit(run())
}

// classifyExit folds the per-exhibit outcome lists into the process exit
// code: any hard failure wins over timeouts (the run is broken, not merely
// slow), timeouts alone report exitTimeout, otherwise success.
func classifyExit(failed, timedOut []string) int {
	switch {
	case len(failed) > 0:
		return exitFailure
	case len(timedOut) > 0:
		return exitTimeout
	default:
		return exitOK
	}
}

// run carries main's body so profile-writing defers fire before exit.
func run() int {
	which := flag.String("experiment", "all", "comma-separated exhibits to regenerate (table1..table8, figure1..figure7, extension names, all)")
	ext := flag.Bool("extensions", false, "also run the beyond-the-paper extension/ablation studies")
	n := flag.Int64("n", 2_000_000, "instructions simulated per workload")
	trials := flag.Int("trials", 5, "trials for variability experiments (figure5)")
	quiet := flag.Bool("q", false, "suppress progress timing")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	chart := flag.Bool("chart", false, "render figure1/figure7 as ASCII stacked-bar charts (as in the paper)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	manifestDir := flag.String("manifest", "", "checkpoint directory: completed exhibits persist there and an interrupted run resumes from it")
	outFile := flag.String("o", "", "also write the concatenated exhibit outputs to this file (atomically, on full success)")
	timeout := flag.Duration("timeout", 0, "per-exhibit wall-clock budget (0 = unlimited)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibstables: -cpuprofile: %v\n", err)
			return exitUsage
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ibstables: -cpuprofile: %v\n", err)
			return exitUsage
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ibstables: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ibstables: -memprofile: %v\n", err)
			}
		}()
	}

	opt := ibsim.Options{Instructions: *n, Trials: *trials, Timeout: *timeout}
	names := ibsim.ExhibitNames()
	if *ext {
		names = append(names, ibsim.ExtensionNames()...)
	}
	if *which != "all" {
		names = nil
		for _, raw := range strings.Split(*which, ",") {
			name := strings.ToLower(strings.TrimSpace(raw))
			if name == "" {
				continue
			}
			if !ibsim.IsExhibit(name) {
				fmt.Fprintf(os.Stderr, "ibstables: unknown experiment %q (have %s; %s; all)\n",
					raw, strings.Join(ibsim.ExhibitNames(), ", "), strings.Join(ibsim.ExtensionNames(), ", "))
				return exitUsage
			}
			names = append(names, name)
		}
		if len(names) == 0 {
			fmt.Fprintln(os.Stderr, "ibstables: -experiment names no exhibit")
			return exitUsage
		}
	}

	var man *manifest.Manifest
	if *manifestDir != "" {
		var resumed int
		var err error
		man, resumed, err = manifest.Open(*manifestDir, manifest.Params{
			Instructions: *n, Trials: *trials, CSV: *csv, Chart: *chart,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibstables: -manifest: %v\n", err)
			return exitUsage
		}
		if resumed > 0 {
			fmt.Fprintf(os.Stderr, "ibstables: resuming: %d exhibit(s) already complete in %s\n", resumed, *manifestDir)
		}
	}

	var outputs []string
	var failed, timedOut []string
	for _, name := range names {
		if ctx.Err() != nil {
			return interrupted(name, man != nil)
		}
		if man != nil {
			if out, ok := man.Get(name); ok {
				outputs = append(outputs, out)
				fmt.Println(out)
				if !*quiet {
					fmt.Printf("[%s restored from manifest]\n\n", name)
				}
				continue
			}
		}
		start := time.Now()
		ectx := ctx
		cancel := context.CancelFunc(func() {})
		if *timeout > 0 {
			ectx, cancel = context.WithTimeout(ctx, *timeout)
		}
		eopt := opt
		eopt.Context = ectx
		out, err := ibsim.RenderExhibit(name, eopt, *chart)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return interrupted(name, man != nil)
			}
			// One bad exhibit — a worker panic, a timeout, a bad config —
			// fails that exhibit only; the rest of the run proceeds. A
			// deadline expiry is tracked apart from hard failures so the
			// exit code can tell the classes apart.
			if errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(os.Stderr, "ibstables: %s exceeded its %v budget: %v (continuing)\n", name, *timeout, err)
				timedOut = append(timedOut, name)
			} else {
				fmt.Fprintf(os.Stderr, "ibstables: %s failed: %v (continuing)\n", name, err)
				failed = append(failed, name)
			}
			continue
		}
		if *csv {
			out = toCSV(out)
		}
		if man != nil {
			if err := man.Put(name, out); err != nil {
				fmt.Fprintf(os.Stderr, "ibstables: checkpointing %s: %v\n", name, err)
				return exitFailure
			}
		}
		outputs = append(outputs, out)
		fmt.Println(out)
		if !*quiet {
			fmt.Printf("[%s regenerated in %.1fs]\n\n", name, time.Since(start).Seconds())
		}
	}
	if len(failed)+len(timedOut) > 0 {
		if len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "ibstables: %d exhibit(s) failed: %s\n", len(failed), strings.Join(failed, ", "))
		}
		if len(timedOut) > 0 {
			fmt.Fprintf(os.Stderr, "ibstables: %d exhibit(s) timed out: %s\n", len(timedOut), strings.Join(timedOut, ", "))
		}
		return classifyExit(failed, timedOut)
	}
	if *outFile != "" {
		data := []byte(strings.Join(outputs, "\n") + "\n")
		if err := atomicio.WriteFile(*outFile, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ibstables: -o: %v\n", err)
			return exitFailure
		}
	}
	return exitOK
}

// interrupted reports a SIGINT/SIGTERM shutdown and returns the
// conventional 128+SIGINT exit code.
func interrupted(name string, hasManifest bool) int {
	msg := fmt.Sprintf("ibstables: interrupted during %s", name)
	if hasManifest {
		msg += "; completed exhibits are checkpointed — rerun with the same -manifest to resume"
	}
	fmt.Fprintln(os.Stderr, msg)
	return exitInterrupt
}
