package main

import (
	"strings"
	"testing"

	"ibsim"
)

// Every name advertised in the order lists must have a runner, and vice
// versa.
func TestExhibitMapComplete(t *testing.T) {
	advertised := map[string]bool{}
	for _, name := range append(append([]string{}, exhibitOrder...), extensionOrder...) {
		if advertised[name] {
			t.Errorf("duplicate exhibit name %q", name)
		}
		advertised[name] = true
		if _, ok := exhibits[name]; !ok {
			t.Errorf("exhibit %q advertised but has no runner", name)
		}
	}
	for name := range exhibits {
		if !advertised[name] {
			t.Errorf("runner %q not reachable from any order list", name)
		}
	}
}

// Descriptive exhibits run instantly and produce content.
func TestDescriptiveExhibits(t *testing.T) {
	for _, name := range []string{"table2", "figure2"} {
		out, err := exhibits[name](ibsim.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) < 100 {
			t.Errorf("%s output suspiciously short", name)
		}
	}
}

// A simulated exhibit runs end to end at a tiny budget.
func TestSimulatedExhibitSmoke(t *testing.T) {
	out, err := exhibits["table5"](ibsim.Options{Instructions: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CPIinstr (IBS)") {
		t.Errorf("table5 output malformed:\n%s", out)
	}
}

// Determinism: the same exhibit at the same options renders identically.
func TestExhibitDeterminism(t *testing.T) {
	opt := ibsim.Options{Instructions: 50_000}
	a, err := exhibits["table4"](opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exhibits["table4"](opt)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("table4 output not deterministic")
	}
}

func TestToCSV(t *testing.T) {
	out, err := exhibits["table5"](ibsim.Options{Instructions: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	csv := toCSV(out)
	if !strings.Contains(csv, "# Table 5") {
		t.Errorf("CSV missing title comment:\n%s", csv)
	}
	if !strings.Contains(csv, "Next Level in Hierarchy,Main Memory,Ideal Off-chip Cache") {
		t.Errorf("CSV row malformed:\n%s", csv)
	}
	if strings.Contains(csv, "---") {
		t.Error("CSV contains rule lines")
	}
}

func TestSplitCells(t *testing.T) {
	cells := splitCells("Main Memory    0.34   1.80")
	if len(cells) != 3 || cells[0] != "Main Memory" || cells[2] != "1.80" {
		t.Fatalf("splitCells = %q", cells)
	}
}

func TestJoinCSVQuoting(t *testing.T) {
	got := joinCSV([]string{`a"b`, "c,d", "plain"})
	want := `"a""b","c,d",plain`
	if got != want {
		t.Fatalf("joinCSV = %q, want %q", got, want)
	}
}
