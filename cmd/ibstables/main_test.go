package main

import (
	"strings"
	"testing"

	"ibsim"
)

// Every name advertised in the order lists must resolve in the registry,
// with no duplicates, and the registry must not hide names the CLI cannot
// reach.
func TestExhibitRegistryComplete(t *testing.T) {
	advertised := map[string]bool{}
	for _, name := range append(ibsim.ExhibitNames(), ibsim.ExtensionNames()...) {
		if advertised[name] {
			t.Errorf("duplicate exhibit name %q", name)
		}
		advertised[name] = true
		if !ibsim.IsExhibit(name) {
			t.Errorf("exhibit %q advertised but has no runner", name)
		}
	}
	for _, name := range ibsim.AllExhibitNames() {
		if !advertised[name] {
			t.Errorf("runner %q not reachable from any order list", name)
		}
	}
}

// Descriptive exhibits run instantly and produce content.
func TestDescriptiveExhibits(t *testing.T) {
	for _, name := range []string{"table2", "figure2"} {
		out, err := ibsim.RenderExhibit(name, ibsim.Options{}, false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) < 100 {
			t.Errorf("%s output suspiciously short", name)
		}
	}
}

// A simulated exhibit runs end to end at a tiny budget.
func TestSimulatedExhibitSmoke(t *testing.T) {
	out, err := ibsim.RenderExhibit("table5", ibsim.Options{Instructions: 50_000}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CPIinstr (IBS)") {
		t.Errorf("table5 output malformed:\n%s", out)
	}
}

// Determinism: the same exhibit at the same options renders identically.
func TestExhibitDeterminism(t *testing.T) {
	opt := ibsim.Options{Instructions: 50_000}
	a, err := ibsim.RenderExhibit("table4", opt, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ibsim.RenderExhibit("table4", opt, false)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("table4 output not deterministic")
	}
}

// The chart variants address the same exhibits but render differently.
func TestExhibitChartVariant(t *testing.T) {
	opt := ibsim.Options{Instructions: 30_000}
	plain, err := ibsim.RenderExhibit("figure1", opt, false)
	if err != nil {
		t.Fatal(err)
	}
	chart, err := ibsim.RenderExhibit("figure1", opt, true)
	if err != nil {
		t.Fatal(err)
	}
	if plain == chart {
		t.Fatal("figure1 chart rendering identical to plain rendering")
	}
	// Chart mode on a chart-less exhibit falls back to the plain form.
	a, err := ibsim.RenderExhibit("table2", opt, true)
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := ibsim.RenderExhibit("table2", opt, false); a != b {
		t.Fatal("chart flag changed a chart-less exhibit")
	}
}

// Exit codes classify failure modes: hard failures dominate timeouts.
func TestClassifyExit(t *testing.T) {
	cases := []struct {
		failed, timedOut []string
		want             int
	}{
		{nil, nil, exitOK},
		{[]string{"table4"}, nil, exitFailure},
		{nil, []string{"table4"}, exitTimeout},
		{[]string{"table4"}, []string{"figure5"}, exitFailure},
	}
	for _, c := range cases {
		if got := classifyExit(c.failed, c.timedOut); got != c.want {
			t.Errorf("classifyExit(%v, %v) = %d, want %d", c.failed, c.timedOut, got, c.want)
		}
	}
}

func TestToCSV(t *testing.T) {
	out, err := ibsim.RenderExhibit("table5", ibsim.Options{Instructions: 30_000}, false)
	if err != nil {
		t.Fatal(err)
	}
	csv := toCSV(out)
	if !strings.Contains(csv, "# Table 5") {
		t.Errorf("CSV missing title comment:\n%s", csv)
	}
	if !strings.Contains(csv, "Next Level in Hierarchy,Main Memory,Ideal Off-chip Cache") {
		t.Errorf("CSV row malformed:\n%s", csv)
	}
	if strings.Contains(csv, "---") {
		t.Error("CSV contains rule lines")
	}
}

func TestSplitCells(t *testing.T) {
	cells := splitCells("Main Memory    0.34   1.80")
	if len(cells) != 3 || cells[0] != "Main Memory" || cells[2] != "1.80" {
		t.Fatalf("splitCells = %q", cells)
	}
}

func TestJoinCSVQuoting(t *testing.T) {
	got := joinCSV([]string{`a"b`, "c,d", "plain"})
	want := `"a""b","c,d",plain`
	if got != want {
		t.Fatalf("joinCSV = %q, want %q", got, want)
	}
}
