package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ibsim/internal/server"
	"ibsim/internal/server/client"
)

// pickAddr grabs a free loopback address by binding and releasing it.
func pickAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// simRequests reads the simulation-request counter off /metrics.
func simRequests(base string) float64 {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	var m map[string]any
	if json.NewDecoder(resp.Body).Decode(&m) != nil {
		return -1
	}
	n, _ := m["requests_total"].(float64)
	return n
}

// The daemon starts, serves, and drains cleanly on SIGTERM while a
// request is in flight — the end-to-end shutdown contract.
func TestDaemonServesAndDrainsOnSignal(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a live daemon")
	}
	addr := pickAddr(t)

	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", addr, "-q", "-drain-timeout", "10s"})
	}()

	base := "http://" + addr
	c := client.New(base, client.WithRetries(8))
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	waitUntil(t, 10*time.Second, func() bool { return c.Ready(ctx) })

	// Normal traffic works.
	resp, err := c.Exhibit(ctx, server.ExhibitRequest{Name: "table2"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, "Table 2") {
		t.Fatalf("unexpected exhibit text: %.80s", resp.Text)
	}

	// Start a real simulation request, wait (via /metrics) until the
	// server has accepted it, then SIGTERM mid-flight: the request must
	// still complete and the daemon must exit 0.
	before := simRequests(base)
	var wg sync.WaitGroup
	var sweepErr error
	var sweepResp *server.SweepResponse
	wg.Add(1)
	go func() {
		defer wg.Done()
		sweepResp, sweepErr = c.Sweep(ctx, server.SweepRequest{
			Workload: "eqntott", Instructions: 400_000, LineSize: 32,
			Cells: []server.CellSpec{{Sets: 256, Assoc: 2}},
		})
	}()
	waitUntil(t, 10*time.Second, func() bool { return simRequests(base) > before })
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	wg.Wait()
	if sweepErr != nil {
		t.Fatalf("in-flight sweep failed during drain: %v", sweepErr)
	}
	if sweepResp.Accesses == 0 {
		t.Fatal("in-flight sweep returned an empty result")
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exited %d, want 0 after clean drain", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	// The listener is really gone.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after drain")
	}
}

func TestDaemonRejectsBadFlags(t *testing.T) {
	if code := run([]string{"-addr", "not an address", "-q"}); code != 1 {
		t.Fatalf("exit = %d, want 1 for an unusable listen address", code)
	}
	if code := run([]string{"-no-such-flag"}); code != 1 {
		t.Fatalf("exit = %d, want 1 for unknown flags", code)
	}
}

// waitUntil polls cond up to the deadline.
func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
