// Command ibsimd serves the ibsim simulation library over HTTP as a
// hardened daemon: the sweep engine (POST /v1/sweep), the replay fan-out
// driver (POST /v1/replay), and every paper/extension exhibit
// (GET /v1/exhibit/{name}), with admission control, request deadlines,
// in-flight deduplication, graceful degradation, and a drain-on-SIGTERM
// shutdown. Liveness, readiness, and metrics are exposed on /healthz,
// /readyz, and /metrics.
//
// Exit codes: 0 after a clean drain, 1 on serve or configuration errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ibsim/internal/server"
	"ibsim/internal/synth"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("ibsimd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8347", "listen address")
		inflightMB  = fs.Int64("max-inflight-mb", 1024, "admission capacity: summed trace footprint of running requests, in MiB")
		maxQueue    = fs.Int("max-queue", 16, "admission wait-queue bound (0 sheds immediately)")
		timeout     = fs.Duration("timeout", 60*time.Second, "default per-request deadline")
		maxTimeout  = fs.Duration("max-timeout", 5*time.Minute, "cap on client-requested deadlines")
		drain       = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget")
		storeIdleMB = fs.Int64("store-idle-mb", 256, "trace store idle-cache budget, in MiB")
		storeHardMB = fs.Int64("store-hard-mb", 0, "trace store hard per-trace budget, in MiB (0 = unlimited; over-budget requests degrade to streaming)")
		maxInstr    = fs.Int64("max-instructions", 8_000_000, "per-request instruction cap (larger asks are clamped and marked degraded)")
		degradeWin  = fs.Duration("degrade-window", 250*time.Millisecond, "deadlines shorter than this get reduced-fidelity answers (0 disables)")
		quiet       = fs.Bool("q", false, "suppress operational logging")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	logger := log.New(os.Stderr, "ibsimd: ", log.LstdFlags)
	if *quiet {
		logger = log.New(discard{}, "", 0)
	}

	queue := *maxQueue
	if queue == 0 {
		queue = -1 // Config: negative disables the queue outright
	}
	window := *degradeWin
	if window == 0 {
		window = -1
	}
	cfg := server.Config{
		Store:            synth.NewStoreLimits(*storeIdleMB<<20, *storeHardMB<<20),
		MaxInflightBytes: *inflightMB << 20,
		MaxQueue:         queue,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		DrainTimeout:     *drain,
		MaxInstructions:  *maxInstr,
		DegradeWindow:    window,
		Log:              logger,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibsimd: listen: %v\n", err)
		return 1
	}

	// SIGINT/SIGTERM begin the drain; a second signal aborts hard via the
	// default handler once the signal context is consumed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger.Printf("serving on http://%s (capacity %d MiB, queue %d, timeout %v)",
		ln.Addr(), *inflightMB, *maxQueue, *timeout)
	if err := server.New(cfg).Run(ctx, ln); err != nil {
		fmt.Fprintf(os.Stderr, "ibsimd: %v\n", err)
		return 1
	}
	logger.Printf("drained cleanly")
	return 0
}

// discard is an io.Writer for -q.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
