package main

import "testing"

func TestReport(t *testing.T) {
	if err := report("eqntott", 32, 30_000); err != nil {
		t.Fatal(err)
	}
}

func TestReportUnknownWorkload(t *testing.T) {
	if err := report("nonesuch", 32, 1000); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestReportBadLineSize(t *testing.T) {
	if err := report("eqntott", 24, 1000); err == nil {
		t.Fatal("bad line size accepted")
	}
}
