package main

import (
	"path/filepath"
	"testing"

	"ibsim"
)

func TestReport(t *testing.T) {
	if err := report("eqntott", 32, 30_000); err != nil {
		t.Fatal(err)
	}
}

func TestReportUnknownWorkload(t *testing.T) {
	if err := report("nonesuch", 32, 1000); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestReportBadLineSize(t *testing.T) {
	if err := report("eqntott", 24, 1000); err == nil {
		t.Fatal("bad line size accepted")
	}
}

// TestConvertRoundTrip drives the CLI conversion both ways: a record trace
// converted to columnar and back must reproduce exactly its instruction
// fetches (data references are dropped by the columnar format).
func TestConvertRoundTrip(t *testing.T) {
	w, err := ibsim.LoadWorkload("nroff")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rec := filepath.Join(dir, "nroff.ibstrace")
	if _, err := ibsim.WriteTraceFile(rec, w, 20_000); err != nil {
		t.Fatal(err)
	}
	col := filepath.Join(dir, "nroff.ibsc")
	if err := convertFile(rec, col); err != nil {
		t.Fatalf("record -> columnar: %v", err)
	}
	if ok, err := ibsim.IsColumnarTraceFile(col); err != nil || !ok {
		t.Fatalf("converted file does not sniff as columnar (ok=%v err=%v)", ok, err)
	}
	if err := reportColumnar(col); err != nil {
		t.Fatalf("columnar report: %v", err)
	}

	back := filepath.Join(dir, "nroff-back.ibstrace")
	if err := convertFile(col, back); err != nil {
		t.Fatalf("columnar -> record: %v", err)
	}
	orig, complete, err := ibsim.SalvageTraceFile(rec)
	if err != nil || !complete {
		t.Fatalf("reading original: complete=%v err=%v", complete, err)
	}
	got, complete, err := ibsim.SalvageTraceFile(back)
	if err != nil || !complete {
		t.Fatalf("reading round-tripped: complete=%v err=%v", complete, err)
	}
	var fetches []ibsim.Ref
	for _, r := range orig {
		if r.Kind == ibsim.IFetch {
			fetches = append(fetches, r)
		}
	}
	if len(got) != len(fetches) {
		t.Fatalf("round trip yields %d refs, original has %d instruction fetches", len(got), len(fetches))
	}
	for i := range got {
		if got[i] != fetches[i] {
			t.Fatalf("ref %d: round trip %+v, original fetch %+v", i, got[i], fetches[i])
		}
	}
}

func TestConvertMissingSource(t *testing.T) {
	dir := t.TempDir()
	if err := convertFile(filepath.Join(dir, "nope.ibstrace"), filepath.Join(dir, "out.ibsc")); err == nil {
		t.Fatal("missing source accepted")
	}
}
