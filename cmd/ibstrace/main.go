// Command ibstrace characterizes traces the way the paper's authors
// characterized theirs: footprints, working sets, fully-associative LRU
// miss-ratio curves, and sequential run lengths. It accepts either an
// IBSTRACE file (produced by ibsgen) or a workload name to synthesize on the
// fly.
//
// Usage:
//
//	ibstrace -file gs.ibstrace
//	ibstrace -workload verilog -n 2000000
//	ibstrace -workload gs -compare eqntott      # side-by-side
package main

import (
	"flag"
	"fmt"
	"os"

	"ibsim"
)

func main() {
	var (
		file     = flag.String("file", "", "IBSTRACE file to analyze")
		workload = flag.String("workload", "", "workload to synthesize and analyze")
		compare  = flag.String("compare", "", "second workload to analyze side by side")
		n        = flag.Int64("n", 2_000_000, "instructions when synthesizing")
		line     = flag.Int("line", 32, "line granularity in bytes")
	)
	flag.Parse()

	switch {
	case *file != "":
		refs, complete, err := ibsim.SalvageTraceFile(*file)
		if !complete {
			if len(refs) == 0 {
				fail(err)
			}
			// Damaged but salvageable: analyze the valid prefix, loudly.
			fmt.Fprintf(os.Stderr, "ibstrace: WARNING: %s is damaged (%v); analyzing the salvaged %d-reference prefix\n",
				*file, err, len(refs))
		}
		a, err := ibsim.AnalyzeLocality(refs, *line)
		if err != nil {
			fail(err)
		}
		fmt.Printf("== %s ==\n%s", *file, a.Report())
		printRunStats(ibsim.SummarizeRuns(ibsim.CompactTrace(refs)))
	case *workload != "":
		if err := report(*workload, *line, *n); err != nil {
			fail(err)
		}
		if *compare != "" {
			fmt.Println()
			if err := report(*compare, *line, *n); err != nil {
				fail(err)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func report(name string, line int, n int64) error {
	w, err := ibsim.LoadWorkload(name)
	if err != nil {
		return err
	}
	a, err := ibsim.AnalyzeWorkloadLocality(w, line, n)
	if err != nil {
		return err
	}
	fmt.Printf("== %s (%s) ==\n%s", w.Name, w.Description, a.Report())
	return nil
}

// printRunStats reports the trace's sequential-run structure — the numbers
// that determine how much the run-compacted bulk replay path can win.
func printRunStats(st ibsim.RunStats) {
	fmt.Printf("sequential runs:      %d (%d instructions)\n", st.Runs, st.Instructions)
	fmt.Printf("run length:           mean %.2f, median %.1f, max %d instructions\n",
		st.MeanLen, st.MedianLen, st.MaxLen)
	fmt.Printf("compaction ratio:     %.2fx\n", st.CompactionRatio())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ibstrace:", err)
	os.Exit(1)
}
