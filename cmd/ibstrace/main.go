// Command ibstrace characterizes traces the way the paper's authors
// characterized theirs: footprints, working sets, fully-associative LRU
// miss-ratio curves, and sequential run lengths. It accepts an IBSTRACE
// record file (produced by ibsgen), an IBSTRACE/v3 columnar file, or a
// workload name to synthesize on the fly, and converts between the two
// on-disk formats.
//
// Usage:
//
//	ibstrace -file gs.ibstrace
//	ibstrace -file gs.ibsc                       # columnar: block statistics
//	ibstrace -file gs.ibstrace -convert gs.ibsc  # record -> columnar (v3)
//	ibstrace -file gs.ibsc -convert gs.ibstrace  # columnar -> record
//	ibstrace -workload verilog -n 2000000
//	ibstrace -workload gs -compare eqntott       # side-by-side
//	ibstrace -workload gs -seek 1234567          # checkpoint-seek spot-check
package main

import (
	"flag"
	"fmt"
	"os"

	"ibsim"
)

func main() {
	var (
		file     = flag.String("file", "", "IBSTRACE file to analyze (record or columnar)")
		convert  = flag.String("convert", "", "convert -file to this path (direction follows the source format)")
		workload = flag.String("workload", "", "workload to synthesize and analyze")
		compare  = flag.String("compare", "", "second workload to analyze side by side")
		n        = flag.Int64("n", 2_000_000, "instructions when synthesizing")
		line     = flag.Int("line", 32, "line granularity in bytes")
		seek     = flag.Int64("seek", -1, "spot-check: compare the reference at this instruction index reached by checkpoint seek vs sequential generation (needs -workload)")
	)
	flag.Parse()

	switch {
	case *seek >= 0:
		if *workload == "" {
			fail(fmt.Errorf("-seek needs -workload (checkpoints are generator states, not trace data)"))
		}
		if err := seekCheck(*workload, *n, *seek); err != nil {
			fail(err)
		}
	case *convert != "":
		if *file == "" {
			fail(fmt.Errorf("-convert needs -file as the source"))
		}
		if err := convertFile(*file, *convert); err != nil {
			fail(err)
		}
	case *file != "":
		columnar, err := ibsim.IsColumnarTraceFile(*file)
		if err != nil {
			fail(err)
		}
		if columnar {
			if err := reportColumnar(*file); err != nil {
				fail(err)
			}
			return
		}
		refs, complete, err := ibsim.SalvageTraceFile(*file)
		if !complete {
			if len(refs) == 0 {
				fail(err)
			}
			// Damaged but salvageable: analyze the valid prefix, loudly.
			fmt.Fprintf(os.Stderr, "ibstrace: WARNING: %s is damaged (%v); analyzing the salvaged %d-reference prefix\n",
				*file, err, len(refs))
		}
		a, err := ibsim.AnalyzeLocality(refs, *line)
		if err != nil {
			fail(err)
		}
		fmt.Printf("== %s ==\n%s", *file, a.Report())
		printRunStats(ibsim.SummarizeRuns(ibsim.CompactTrace(refs)))
	case *workload != "":
		if err := report(*workload, *line, *n); err != nil {
			fail(err)
		}
		if *compare != "" {
			fmt.Println()
			if err := report(*compare, *line, *n); err != nil {
				fail(err)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// convertFile re-encodes src as dst, picking the direction from the source
// header: a record file becomes a columnar one, a columnar file expands back
// to records.
func convertFile(src, dst string) error {
	columnar, err := ibsim.IsColumnarTraceFile(src)
	if err != nil {
		return err
	}
	if columnar {
		written, err := ibsim.ConvertColumnarToTrace(src, dst)
		if err != nil {
			return err
		}
		st, err := os.Stat(dst)
		if err != nil {
			return err
		}
		fmt.Printf("%s: expanded to %d instruction-fetch records in %s (%.1f MB)\n",
			src, written, dst, float64(st.Size())/1e6)
		return nil
	}
	rs, err := ibsim.ConvertTraceToColumnar(src, dst)
	if err != nil {
		return err
	}
	st, err := os.Stat(dst)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d instructions in %d runs -> %s (%.1f MB, %.2f bytes/instruction)\n",
		src, rs.Instructions, rs.Runs, dst, float64(st.Size())/1e6,
		float64(st.Size())/float64(rs.Instructions))
	return nil
}

// reportColumnar prints a columnar file's block statistics: the per-block
// index view, the compression anatomy (delta-width histogram), and the
// sequential-run structure. Damaged files are salvaged loudly, and the
// statistics describe the surviving blocks.
func reportColumnar(path string) error {
	cf, dmg, err := ibsim.SalvageColumnarTrace(path)
	if err != nil {
		return err
	}
	defer cf.Close()
	if dmg.Damaged() {
		how := "footer index intact"
		if dmg.IndexRebuilt {
			how = "index rebuilt by forward scan"
		}
		fmt.Fprintf(os.Stderr, "ibstrace: WARNING: %s is damaged (%v); dropped %d block(s) / %d instructions (%s), reporting the salvaged remainder\n",
			path, dmg.Err, dmg.DroppedBlocks, dmg.DroppedRefs, how)
	}
	st, err := cf.Stats()
	if err != nil {
		return err
	}
	mode := "sequential reads"
	if cf.Mapped() {
		mode = "mmap (zero-copy)"
	}
	fmt.Printf("== %s ==\n", path)
	fmt.Printf("format:               IBSTRACE/v3 columnar, %s\n", mode)
	fmt.Printf("blocks:               %d (target %d bytes/block)\n", st.Blocks, cf.BlockBytes())
	fmt.Printf("instructions:         %d in %d runs\n", st.Refs, st.Runs)
	fmt.Printf("file size:            %.1f MB (%d payload bytes, %.2f bytes/instruction)\n",
		float64(st.FileBytes)/1e6, st.PayloadBytes, st.BytesPerRef)
	fmt.Printf("salvaged blocks:      %d dropped\n", dmg.DroppedBlocks)
	fmt.Printf("delta widths:        ")
	for w, c := range st.DeltaWidth {
		if c > 0 {
			fmt.Printf(" %dB:%d", w+1, c)
		}
	}
	fmt.Println()

	// The run structure determines how much the bulk replay path can win;
	// gather the runs block by block (24 bytes per run, not per ref).
	runs := make([]ibsim.Run, 0, st.Runs)
	var buf []ibsim.Run
	for i := 0; i < cf.NumBlocks(); i++ {
		if buf, err = cf.BlockRuns(i, buf); err != nil {
			return err
		}
		runs = append(runs, buf...)
	}
	printRunStats(ibsim.SummarizeRuns(runs))
	return nil
}

// seekCheck is the checkpoint-seek spot-check: it generates the workload's
// instruction stream once with a checkpoint index attached, then SEEKS to
// instruction i (restoring the nearest checkpoint and fast-forwarding) and
// compares the reference it lands on against plain sequential generation.
// Any divergence is a correctness bug in the snapshot/restore machinery and
// exits non-zero.
func seekCheck(name string, n, i int64) error {
	if i >= n {
		return fmt.Errorf("-seek %d is past the end of the %d-instruction trace (raise -n)", i, n)
	}
	w, err := ibsim.LoadWorkload(name)
	if err != nil {
		return err
	}
	// Sequential reference: generate and discard up to instruction i.
	seq, err := ibsim.NewSeekableTrace(w, n, nil)
	if err != nil {
		return err
	}
	var want ibsim.Ref
	for k := int64(0); k <= i; k++ {
		want, _ = seq.Next()
	}
	// Seeked: warm an index with one full pass, then jump.
	ix := ibsim.NewCheckpointIndex(0)
	seeker, err := ibsim.NewSeekableTrace(w, n, ix)
	if err != nil {
		return err
	}
	for {
		if _, ok := seeker.Next(); !ok {
			break
		}
	}
	if err := seeker.SeekTo(i); err != nil {
		return err
	}
	got, ok := seeker.Next()
	if !ok {
		return fmt.Errorf("seeked source ended at instruction %d of %d", i, n)
	}
	st := ix.Stats()
	fmt.Printf("== %s: seek spot-check at instruction %d of %d ==\n", w.Name, i, n)
	fmt.Printf("sequential: addr %#x domain %d\n", want.Addr, want.Domain)
	fmt.Printf("seeked:     addr %#x domain %d (index: %d checkpoints, %d bytes, every %d instructions)\n",
		got.Addr, got.Domain, st.Count, st.Bytes, st.Every)
	if got != want {
		return fmt.Errorf("MISMATCH: seeked reference diverges from sequential generation")
	}
	fmt.Println("PASS: seeked reference matches sequential generation")
	return nil
}

func report(name string, line int, n int64) error {
	w, err := ibsim.LoadWorkload(name)
	if err != nil {
		return err
	}
	a, err := ibsim.AnalyzeWorkloadLocality(w, line, n)
	if err != nil {
		return err
	}
	fmt.Printf("== %s (%s) ==\n%s", w.Name, w.Description, a.Report())
	return nil
}

// printRunStats reports the trace's sequential-run structure — the numbers
// that determine how much the run-compacted bulk replay path can win.
func printRunStats(st ibsim.RunStats) {
	fmt.Printf("sequential runs:      %d (%d instructions)\n", st.Runs, st.Instructions)
	fmt.Printf("run length:           mean %.2f, median %.1f, max %d instructions\n",
		st.MeanLen, st.MedianLen, st.MaxLen)
	fmt.Printf("compaction ratio:     %.2fx\n", st.CompactionRatio())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ibstrace:", err)
	os.Exit(1)
}
