// Command ibsgen generates IBSTRACE files from the synthetic workload
// models — our equivalent of the address traces the paper's authors
// distributed to the research community. Traces are written in the
// per-reference record format by default, or as IBSTRACE/v3 columnar files
// (-columnar) for the zero-copy block replay paths.
//
// Usage:
//
//	ibsgen -workload gs -n 4000000 -o gs.ibstrace
//	ibsgen -workload gs -n 100000000 -columnar     # gs.ibsc, block format
//	ibsgen -all -n 1000000 -dir traces/
//	ibsgen -info gs.ibstrace                       # record or columnar
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ibsim"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload to trace (see ibsim -list)")
		all      = flag.Bool("all", false, "generate traces for every IBS workload (both OSes)")
		n        = flag.Int64("n", 4_000_000, "instructions per trace")
		out      = flag.String("o", "", "output file (default <workload>.ibstrace, or .ibsc with -columnar)")
		dir      = flag.String("dir", ".", "output directory for -all")
		columnar = flag.Bool("columnar", false, "write IBSTRACE/v3 columnar files (instruction fetches only)")
		info     = flag.String("info", "", "print a trace file's summary instead of generating")
	)
	flag.Parse()

	ext := ".ibstrace"
	if *columnar {
		ext = ".ibsc"
	}
	switch {
	case *info != "":
		if err := printInfo(*info); err != nil {
			fail(err)
		}
	case *all:
		for _, w := range append(ibsim.IBSMach(), ibsim.IBSUltrix()...) {
			suffix := ""
			if w.OS == ibsim.Monolithic {
				suffix = "-ultrix"
			}
			path := filepath.Join(*dir, w.Name+suffix+ext)
			if err := generate(w, *n, path, *columnar); err != nil {
				fail(err)
			}
		}
	case *workload != "":
		w, err := ibsim.LoadWorkload(*workload)
		if err != nil {
			fail(err)
		}
		path := *out
		if path == "" {
			path = filepath.Base(*workload) + ext
		}
		if err := generate(w, *n, path, *columnar); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(w ibsim.Workload, n int64, path string, columnar bool) error {
	if columnar {
		blocks, err := ibsim.WriteColumnarTraceFile(path, w, n)
		if err != nil {
			return err
		}
		st, err := os.Stat(path)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d instructions in %d columnar blocks, %.1f MB (%.2f bytes/instruction)\n",
			path, n, blocks, float64(st.Size())/1e6, float64(st.Size())/float64(n))
		return nil
	}
	written, err := ibsim.WriteTraceFile(path, w, n)
	if err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d references (%d instructions), %.1f MB (%.2f bytes/ref)\n",
		path, written, n, float64(st.Size())/1e6, float64(st.Size())/float64(written))
	return nil
}

func printInfo(path string) error {
	columnar, err := ibsim.IsColumnarTraceFile(path)
	if err != nil {
		return err
	}
	if columnar {
		return printColumnarInfo(path)
	}
	refs, complete, err := ibsim.SalvageTraceFile(path)
	if !complete {
		if len(refs) == 0 {
			return err
		}
		// Damaged but salvageable: summarize the valid prefix, loudly.
		fmt.Fprintf(os.Stderr, "ibsgen: WARNING: %s is damaged (%v); summarizing the salvaged %d-reference prefix\n",
			path, err, len(refs))
	}
	var kinds [3]int64
	var domains [4]int64
	for _, r := range refs {
		kinds[r.Kind]++
		domains[r.Domain]++
	}
	total := int64(len(refs))
	fmt.Printf("%s: %d references\n", path, total)
	fmt.Printf("  ifetch %d (%.1f%%), dread %d (%.1f%%), dwrite %d (%.1f%%)\n",
		kinds[0], 100*float64(kinds[0])/float64(total),
		kinds[1], 100*float64(kinds[1])/float64(total),
		kinds[2], 100*float64(kinds[2])/float64(total))
	fmt.Printf("  user %.1f%%, kernel %.1f%%, bsd %.1f%%, x %.1f%%\n",
		100*float64(domains[0])/float64(total), 100*float64(domains[1])/float64(total),
		100*float64(domains[2])/float64(total), 100*float64(domains[3])/float64(total))
	return nil
}

// printColumnarInfo summarizes an IBSTRACE/v3 file: every reference is an
// instruction fetch, so the interesting shape is the block structure and the
// per-block domain mix the index can't see — ibstrace -file digs deeper.
func printColumnarInfo(path string) error {
	cf, dmg, err := ibsim.SalvageColumnarTrace(path)
	if err != nil {
		return err
	}
	defer cf.Close()
	if dmg.Damaged() {
		fmt.Fprintf(os.Stderr, "ibsgen: WARNING: %s is damaged (%v); dropped %d block(s) / %d instructions, summarizing the salvaged remainder\n",
			path, dmg.Err, dmg.DroppedBlocks, dmg.DroppedRefs)
	}
	var domains [4]int64
	var buf []ibsim.Run
	for i := 0; i < cf.NumBlocks(); i++ {
		if buf, err = cf.BlockRuns(i, buf); err != nil {
			return err
		}
		for _, r := range buf {
			domains[r.Domain] += r.Len
		}
	}
	total := cf.Refs()
	fmt.Printf("%s: %d instruction fetches in %d columnar blocks (all ifetch; columnar traces carry no data references)\n",
		path, total, cf.NumBlocks())
	fmt.Printf("  user %.1f%%, kernel %.1f%%, bsd %.1f%%, x %.1f%%\n",
		100*float64(domains[0])/float64(total), 100*float64(domains[1])/float64(total),
		100*float64(domains[2])/float64(total), 100*float64(domains[3])/float64(total))
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ibsgen:", err)
	os.Exit(1)
}
