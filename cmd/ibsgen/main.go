// Command ibsgen generates IBSTRACE files from the synthetic workload
// models — our equivalent of the address traces the paper's authors
// distributed to the research community. Traces are written in the
// per-reference record format by default, or as IBSTRACE/v3 columnar files
// (-columnar) for the zero-copy block replay paths.
//
// Usage:
//
//	ibsgen -workload gs -n 4000000 -o gs.ibstrace
//	ibsgen -workload gs -n 100000000 -columnar     # gs.ibsc, block format
//	ibsgen -workload gs -checkpoint-every 16384    # record seek checkpoints, print index stats
//	ibsgen -all -n 1000000 -dir traces/
//	ibsgen -info gs.ibstrace                       # record or columnar
//	ibsgen -info gs.ibsc -workload gs -checkpoint-every 16384  # + checkpoint-index stats
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ibsim"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload to trace (see ibsim -list)")
		all      = flag.Bool("all", false, "generate traces for every IBS workload (both OSes)")
		n        = flag.Int64("n", 4_000_000, "instructions per trace")
		out      = flag.String("o", "", "output file (default <workload>.ibstrace, or .ibsc with -columnar)")
		dir      = flag.String("dir", ".", "output directory for -all")
		columnar = flag.Bool("columnar", false, "write IBSTRACE/v3 columnar files (instruction fetches only)")
		info     = flag.String("info", "", "print a trace file's summary instead of generating")
		ckEvery  = flag.Int64("checkpoint-every", 0, "record seek checkpoints every K instructions while generating and print index stats (0 = off)")
	)
	flag.Parse()

	ext := ".ibstrace"
	if *columnar {
		ext = ".ibsc"
	}
	switch {
	case *info != "":
		if err := printInfo(*info, *workload, *ckEvery); err != nil {
			fail(err)
		}
	case *all:
		for _, w := range append(ibsim.IBSMach(), ibsim.IBSUltrix()...) {
			suffix := ""
			if w.OS == ibsim.Monolithic {
				suffix = "-ultrix"
			}
			path := filepath.Join(*dir, w.Name+suffix+ext)
			if err := generate(w, *n, path, *columnar, *ckEvery); err != nil {
				fail(err)
			}
		}
	case *workload != "":
		w, err := ibsim.LoadWorkload(*workload)
		if err != nil {
			fail(err)
		}
		path := *out
		if path == "" {
			path = filepath.Base(*workload) + ext
		}
		if err := generate(w, *n, path, *columnar, *ckEvery); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(w ibsim.Workload, n int64, path string, columnar bool, ckEvery int64) error {
	var ix *ibsim.CheckpointIndex
	if ckEvery > 0 {
		ix = ibsim.NewCheckpointIndex(ckEvery)
	}
	if columnar {
		var blocks int
		var err error
		if ix != nil {
			blocks, err = ibsim.WriteColumnarTraceFileCheckpointed(path, w, n, ix)
		} else {
			blocks, err = ibsim.WriteColumnarTraceFile(path, w, n)
		}
		if err != nil {
			return err
		}
		st, err := os.Stat(path)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d instructions in %d columnar blocks, %.1f MB (%.2f bytes/instruction)\n",
			path, n, blocks, float64(st.Size())/1e6, float64(st.Size())/float64(n))
		printCheckpointStats(ix)
		return nil
	}
	var written uint64
	var err error
	if ix != nil {
		written, err = ibsim.WriteTraceFileCheckpointed(path, w, n, ix)
	} else {
		written, err = ibsim.WriteTraceFile(path, w, n)
	}
	if err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d references (%d instructions), %.1f MB (%.2f bytes/ref)\n",
		path, written, n, float64(st.Size())/1e6, float64(st.Size())/float64(written))
	printCheckpointStats(ix)
	return nil
}

// printCheckpointStats reports a generation pass's checkpoint index: how
// many restore points it recorded and what they cost.
func printCheckpointStats(ix *ibsim.CheckpointIndex) {
	if ix == nil {
		return
	}
	st := ix.Stats()
	perCk := 0.0
	if st.Count > 0 {
		perCk = float64(st.Bytes) / float64(st.Count)
	}
	fmt.Printf("  checkpoint index: %d checkpoints, %d bytes (%.1f bytes/checkpoint) at %d-instruction intervals\n",
		st.Count, st.Bytes, perCk, st.Every)
}

func printInfo(path, workload string, ckEvery int64) error {
	columnar, err := ibsim.IsColumnarTraceFile(path)
	if err != nil {
		return err
	}
	if columnar {
		total, err := printColumnarInfo(path)
		if err != nil {
			return err
		}
		return printInfoCheckpoints(path, workload, total, ckEvery)
	}
	refs, complete, err := ibsim.SalvageTraceFile(path)
	if !complete {
		if len(refs) == 0 {
			return err
		}
		// Damaged but salvageable: summarize the valid prefix, loudly.
		fmt.Fprintf(os.Stderr, "ibsgen: WARNING: %s is damaged (%v); summarizing the salvaged %d-reference prefix\n",
			path, err, len(refs))
	}
	var kinds [3]int64
	var domains [4]int64
	for _, r := range refs {
		kinds[r.Kind]++
		domains[r.Domain]++
	}
	total := int64(len(refs))
	fmt.Printf("%s: %d references\n", path, total)
	fmt.Printf("  ifetch %d (%.1f%%), dread %d (%.1f%%), dwrite %d (%.1f%%)\n",
		kinds[0], 100*float64(kinds[0])/float64(total),
		kinds[1], 100*float64(kinds[1])/float64(total),
		kinds[2], 100*float64(kinds[2])/float64(total))
	fmt.Printf("  user %.1f%%, kernel %.1f%%, bsd %.1f%%, x %.1f%%\n",
		100*float64(domains[0])/float64(total), 100*float64(domains[1])/float64(total),
		100*float64(domains[2])/float64(total), 100*float64(domains[3])/float64(total))
	return printInfoCheckpoints(path, workload, kinds[0], ckEvery)
}

// printInfoCheckpoints augments -info with the checkpoint index a seekable
// regeneration of the file's instruction stream would build: the file
// itself carries no checkpoints (they are generator states, not trace
// data), so the stats come from actually generating the workload's
// instruction stream once with an index attached.
func printInfoCheckpoints(path, workload string, instrs, ckEvery int64) error {
	if ckEvery <= 0 {
		return nil
	}
	if workload == "" {
		return fmt.Errorf("-info with -checkpoint-every needs -workload (checkpoints are generator states; name the workload the file was generated from)")
	}
	w, err := ibsim.LoadWorkload(workload)
	if err != nil {
		return err
	}
	ix := ibsim.NewCheckpointIndex(ckEvery)
	src, err := ibsim.NewSeekableTrace(w, instrs, ix)
	if err != nil {
		return err
	}
	for {
		if _, ok := src.Next(); !ok {
			break
		}
	}
	printCheckpointStats(ix)
	return nil
}

// printColumnarInfo summarizes an IBSTRACE/v3 file: every reference is an
// instruction fetch, so the interesting shape is the block structure and the
// per-block domain mix the index can't see — ibstrace -file digs deeper.
func printColumnarInfo(path string) (int64, error) {
	cf, dmg, err := ibsim.SalvageColumnarTrace(path)
	if err != nil {
		return 0, err
	}
	defer cf.Close()
	if dmg.Damaged() {
		fmt.Fprintf(os.Stderr, "ibsgen: WARNING: %s is damaged (%v); dropped %d block(s) / %d instructions, summarizing the salvaged remainder\n",
			path, dmg.Err, dmg.DroppedBlocks, dmg.DroppedRefs)
	}
	var domains [4]int64
	var buf []ibsim.Run
	for i := 0; i < cf.NumBlocks(); i++ {
		if buf, err = cf.BlockRuns(i, buf); err != nil {
			return 0, err
		}
		for _, r := range buf {
			domains[r.Domain] += r.Len
		}
	}
	total := cf.Refs()
	fmt.Printf("%s: %d instruction fetches in %d columnar blocks (all ifetch; columnar traces carry no data references)\n",
		path, total, cf.NumBlocks())
	fmt.Printf("  user %.1f%%, kernel %.1f%%, bsd %.1f%%, x %.1f%%\n",
		100*float64(domains[0])/float64(total), 100*float64(domains[1])/float64(total),
		100*float64(domains[2])/float64(total), 100*float64(domains[3])/float64(total))
	return total, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ibsgen:", err)
	os.Exit(1)
}
