package main

import (
	"os"
	"path/filepath"
	"testing"

	"ibsim"
)

func TestGenerateAndInfo(t *testing.T) {
	w, err := ibsim.LoadWorkload("nroff")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "nroff.ibstrace")
	if err := generate(w, 20_000, path, false, 0); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() < 1000 {
		t.Fatalf("trace file only %d bytes", st.Size())
	}
	if err := printInfo(path, "", 0); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateAndInfoColumnar(t *testing.T) {
	w, err := ibsim.LoadWorkload("nroff")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "nroff.ibsc")
	if err := generate(w, 20_000, path, true, 0); err != nil {
		t.Fatal(err)
	}
	columnar, err := ibsim.IsColumnarTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !columnar {
		t.Fatal("generated file does not sniff as columnar")
	}
	cf, err := ibsim.OpenColumnarTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Refs() != 20_000 {
		t.Fatalf("columnar file holds %d refs, want 20000", cf.Refs())
	}
	cf.Close()
	if err := printInfo(path, "", 0); err != nil {
		t.Fatal(err)
	}
}

func TestPrintInfoMissingFile(t *testing.T) {
	if err := printInfo(filepath.Join(t.TempDir(), "nope.ibstrace"), "", 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestGenerateBadPath(t *testing.T) {
	w, _ := ibsim.LoadWorkload("nroff")
	if err := generate(w, 1000, filepath.Join(t.TempDir(), "no", "such", "dir", "x.ibstrace"), false, 0); err == nil {
		t.Fatal("unwritable path accepted")
	}
}

func TestGenerateCheckpointed(t *testing.T) {
	w, err := ibsim.LoadWorkload("nroff")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "nroff.ibstrace")
	if err := generate(w, 20_000, path, false, 4096); err != nil {
		t.Fatal(err)
	}
	// -info with -checkpoint-every needs the workload name: checkpoints are
	// generator states, not trace data.
	if err := printInfo(path, "", 4096); err == nil {
		t.Fatal("checkpoint info without a workload accepted")
	}
	if err := printInfo(path, "nroff", 4096); err != nil {
		t.Fatal(err)
	}
}
