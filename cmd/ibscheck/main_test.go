package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ibsim/internal/check"
)

// TestRunSmall runs the harness end to end at a tiny scale and validates the
// JSON report shape.
func TestRunSmall(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_ibsim.json")
	if code := run([]string{"-n", "8000", "-o", out}); code != 0 {
		t.Fatalf("run exited %d, want 0", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep check.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != "ibsim-bench/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.GoldenScale {
		t.Error("8k-instruction run claimed golden scale")
	}
	if !rep.Passed {
		t.Error("report says failed, exit code said passed")
	}
	if len(rep.Checks) == 0 || len(rep.Stages) == 0 {
		t.Fatalf("report missing checks (%d) or stages (%d)", len(rep.Checks), len(rep.Stages))
	}
	for _, s := range rep.Stages {
		if s.Seconds < 0 {
			t.Errorf("stage %s: negative timing", s.Name)
		}
	}
}

// TestPrintGolden checks the regeneration mode emits a parseable literal.
func TestPrintGolden(t *testing.T) {
	// Capture stdout.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := run([]string{"-n", "8000", "-print-golden"})
	w.Close()
	os.Stdout = old
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if code != 0 {
		t.Fatalf("print-golden exited %d", code)
	}
	got := b.String()
	if !strings.Contains(got, "var goldens = map[string]Golden{") ||
		!strings.Contains(got, `"fetch/blocking"`) {
		t.Fatalf("golden literal malformed:\n%s", got)
	}
}

// TestBenchOnly skips the invariant checks.
func TestBenchOnly(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if code := run([]string{"-n", "8000", "-bench-only", "-o", out}); code != 0 {
		t.Fatalf("bench-only run exited %d", code)
	}
	var rep check.Report
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Checks) != 0 {
		t.Errorf("bench-only report carries %d checks", len(rep.Checks))
	}
	if len(rep.Stages) == 0 {
		t.Error("bench-only report has no stages")
	}
}
