// Command ibscheck is the simulator-verification and benchmark-regression
// harness: it runs internal/check's invariant and differential checks,
// times the pinned benchmark stages, compares CPI/MPI against the committed
// goldens, and writes a machine-readable report.
//
// Usage:
//
//	ibscheck                       # full run at the pinned golden scale
//	ibscheck -n 1000000            # larger run (golden comparison skipped)
//	ibscheck -o perf/BENCH.json    # report path (default BENCH_ibsim.json)
//	ibscheck -print-golden         # emit the golden.go literal for this run
//	ibscheck -faults               # chaos mode: seeded fault-injection suite
//	ibscheck -faults -match '^chaos/crash-'   # only the crash-consistency scenarios
//	ibscheck sampling-bounds       # only the sampling checks + bench
//	ibscheck columnar-replay       # only the columnar checks + bench
//	ibscheck seek                  # only the checkpoint-seek checks + bench
//
// The exit status is 0 only when every check passes and every tracked stage
// is within golden tolerance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"ibsim/internal/atomicio"
	"ibsim/internal/check"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("ibscheck", flag.ContinueOnError)
	n := fs.Int64("n", check.PinnedInstructions, "per-workload instruction budget")
	seed := fs.Uint64("seed", 0, "seed offset (0 = calibrated profile seeds)")
	out := fs.String("o", "BENCH_ibsim.json", "report output path (empty disables)")
	printGolden := fs.Bool("print-golden", false, "print the golden.go literal for this run's stage values and exit")
	benchOnly := fs.Bool("bench-only", false, "skip invariant/differential checks, run only the bench stages")
	faults := fs.Bool("faults", false, "run only the seeded fault-injection (chaos) suite")
	match := fs.String("match", "", "regexp filtering chaos scenario names (with -faults)")
	noFigures := fs.Bool("no-figures", false, "skip the Figure 3+4 sweep-vs-per-config benchmark")
	noTables := fs.Bool("no-tables", false, "skip the Tables 5-8 + Figures 6/7 fanout-vs-per-config benchmark")
	noSampling := fs.Bool("no-sampling", false, "skip the sampled-vs-exact sweep benchmark")
	noColumnar := fs.Bool("no-columnar", false, "skip the columnar block-replay benchmark")
	noSeek := fs.Bool("no-seek", false, "skip the checkpoint-seek streaming benchmark")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibscheck: -cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ibscheck: -cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ibscheck: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ibscheck: -memprofile: %v\n", err)
			}
		}()
	}

	opt := check.Options{Instructions: *n, Seed: *seed, ChaosFilter: *match}
	start := time.Now()

	if fs.Arg(0) == "sampling-bounds" {
		return runSamplingBounds(opt, *out, start)
	}
	if fs.Arg(0) == "columnar-replay" {
		return runColumnarReplay(opt, *out, start)
	}
	if fs.Arg(0) == "seek" {
		return runSeek(opt, *out, start)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ibscheck: unknown stage %q (did you mean sampling-bounds, columnar-replay, or seek?)\n", fs.Arg(0))
		return 2
	}

	if *faults {
		results, err := check.RunChaos(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibscheck: harness failure: %v\n", err)
			return 2
		}
		for _, r := range results {
			fmt.Printf("%-4s %-42s %s (%.2fs)\n", verdict(r.Passed), r.Name, r.Detail, r.Seconds)
		}
		report := check.Report{
			Schema:       "ibsim-bench/v1",
			Instructions: *n,
			Seed:         *seed,
			Checks:       results,
			Passed:       check.AllPassed(results),
			TotalSeconds: time.Since(start).Seconds(),
		}
		if err := writeReport(*out, report); err != nil {
			fmt.Fprintf(os.Stderr, "ibscheck: %v\n", err)
			return 2
		}
		if !report.Passed {
			fmt.Println("FAIL")
			return 1
		}
		fmt.Printf("PASS (%d fault scenarios, %.2fs)\n", len(results), report.TotalSeconds)
		return 0
	}

	var results []check.Result
	if !*benchOnly && !*printGolden {
		var err error
		results, err = check.RunAll(opt)
		for _, r := range results {
			fmt.Printf("%-4s %-42s %s (%.2fs)\n", verdict(r.Passed), r.Name, r.Detail, r.Seconds)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibscheck: harness failure: %v\n", err)
			return 2
		}
	}

	stages, err := check.RunBench(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibscheck: %v\n", err)
		return 2
	}
	if *printGolden {
		fmt.Printf("// Measured at -n %d -seed %d.\n%s", *n, *seed, check.GoldenLiteral(stages))
		return 0
	}
	stagesOK := true
	for _, s := range stages {
		fmt.Printf("%-4s bench/%-36s %s (%.2fs)\n", verdict(s.Passed), s.Name, s.Detail, s.Seconds)
		stagesOK = stagesOK && s.Passed
	}

	var figures *check.FigureBench
	if !*noFigures {
		figures, err = check.RunFigureBench(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibscheck: %v\n", err)
			return 2
		}
		fmt.Printf("%-4s bench/%-36s %s (%.2fs)\n", verdict(figures.Passed), "figure34-sweep", figures.Detail,
			figures.PerConfigSeconds+figures.SweepSeconds)
		stagesOK = stagesOK && figures.Passed
	}

	var tables *check.TablesBench
	if !*noTables {
		tables, err = check.RunTablesBench(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibscheck: %v\n", err)
			return 2
		}
		fmt.Printf("%-4s bench/%-36s %s (%.2fs)\n", verdict(tables.Passed), "tables-fanout", tables.Detail,
			tables.PerConfigSeconds+tables.FanoutSeconds)
		stagesOK = stagesOK && tables.Passed
	}

	var samp *check.SamplingBench
	if !*noSampling {
		samp, err = check.RunSamplingBench(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibscheck: %v\n", err)
			return 2
		}
		fmt.Printf("%-4s bench/%-36s %s (%.2fs)\n", verdict(samp.Passed), "sampling-sweep", samp.Detail,
			samp.ExactSeconds+samp.SampledSeconds)
		stagesOK = stagesOK && samp.Passed
	}

	var col *check.ColumnarBench
	if !*noColumnar {
		col, err = check.RunColumnarBench(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibscheck: %v\n", err)
			return 2
		}
		fmt.Printf("%-4s bench/%-36s %s (%.2fs)\n", verdict(col.Passed), "columnar-replay", col.Detail,
			col.InMemorySeconds+col.BlockSeconds)
		stagesOK = stagesOK && col.Passed
	}

	var seek *check.SeekBench
	if !*noSeek {
		seek, err = check.RunSeekBench(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibscheck: %v\n", err)
			return 2
		}
		fmt.Printf("%-4s bench/%-36s %s (%.2fs)\n", verdict(seek.Passed), "checkpoint-seek", seek.Detail,
			seek.StreamSeconds+seek.SeekSeconds)
		stagesOK = stagesOK && seek.Passed
	}

	report := check.Report{
		Schema:       "ibsim-bench/v1",
		Instructions: *n,
		Seed:         *seed,
		GoldenScale:  *n == check.PinnedInstructions && *seed == 0,
		Checks:       results,
		Stages:       stages,
		Figure34:     figures,
		Tables:       tables,
		Sampling:     samp,
		Columnar:     col,
		Seek:         seek,
		Passed:       check.AllPassed(results) && stagesOK,
		TotalSeconds: time.Since(start).Seconds(),
	}
	if err := writeReport(*out, report); err != nil {
		fmt.Fprintf(os.Stderr, "ibscheck: %v\n", err)
		return 2
	}
	if !report.Passed {
		fmt.Println("FAIL")
		return 1
	}
	fmt.Printf("PASS (%d checks, %d stages, %.2fs)\n", len(results), len(stages), report.TotalSeconds)
	return 0
}

// runColumnarReplay is the `ibscheck columnar-replay` stage: only the
// columnar differential checks and the block-replay benchmark, for a fast CI
// gate on the on-disk format (`make bench-columnar`).
func runColumnarReplay(opt check.Options, out string, start time.Time) int {
	results, err := check.ColumnarReplay(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibscheck: harness failure: %v\n", err)
		return 2
	}
	for _, r := range results {
		fmt.Printf("%-4s %-42s %s (%.2fs)\n", verdict(r.Passed), r.Name, r.Detail, r.Seconds)
	}
	col, err := check.RunColumnarBench(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibscheck: %v\n", err)
		return 2
	}
	fmt.Printf("%-4s bench/%-36s %s (%.2fs)\n", verdict(col.Passed), "columnar-replay", col.Detail,
		col.InMemorySeconds+col.BlockSeconds)
	report := check.Report{
		Schema:       "ibsim-bench/v1",
		Instructions: opt.Instructions,
		Seed:         opt.Seed,
		GoldenScale:  opt.Instructions == check.PinnedInstructions && opt.Seed == 0,
		Checks:       results,
		Columnar:     col,
		Passed:       check.AllPassed(results) && col.Passed,
		TotalSeconds: time.Since(start).Seconds(),
	}
	if err := writeReport(out, report); err != nil {
		fmt.Fprintf(os.Stderr, "ibscheck: %v\n", err)
		return 2
	}
	if !report.Passed {
		fmt.Println("FAIL")
		return 1
	}
	fmt.Printf("PASS (%d columnar checks, %.2fs)\n", len(results), report.TotalSeconds)
	return 0
}

// runSeek is the `ibscheck seek` stage: only the checkpoint-seek
// differential checks and the seek-vs-stream benchmark, for a fast CI gate
// on the seekable-generator machinery (`make bench-seek`).
func runSeek(opt check.Options, out string, start time.Time) int {
	results, err := check.SeekChecks(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibscheck: harness failure: %v\n", err)
		return 2
	}
	for _, r := range results {
		fmt.Printf("%-4s %-42s %s (%.2fs)\n", verdict(r.Passed), r.Name, r.Detail, r.Seconds)
	}
	seek, err := check.RunSeekBench(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibscheck: %v\n", err)
		return 2
	}
	fmt.Printf("%-4s bench/%-36s %s (%.2fs)\n", verdict(seek.Passed), "checkpoint-seek", seek.Detail,
		seek.StreamSeconds+seek.SeekSeconds)
	report := check.Report{
		Schema:       "ibsim-bench/v1",
		Instructions: opt.Instructions,
		Seed:         opt.Seed,
		GoldenScale:  opt.Instructions == check.PinnedInstructions && opt.Seed == 0,
		Checks:       results,
		Seek:         seek,
		Passed:       check.AllPassed(results) && seek.Passed,
		TotalSeconds: time.Since(start).Seconds(),
	}
	if err := writeReport(out, report); err != nil {
		fmt.Fprintf(os.Stderr, "ibscheck: %v\n", err)
		return 2
	}
	if !report.Passed {
		fmt.Println("FAIL")
		return 1
	}
	fmt.Printf("PASS (%d seek checks, %.2fs)\n", len(results), report.TotalSeconds)
	return 0
}

// runSamplingBounds is the `ibscheck sampling-bounds` stage: only the
// sampling calibration checks and the sampled-sweep benchmark, for a fast CI
// gate on the speed/fidelity dial.
func runSamplingBounds(opt check.Options, out string, start time.Time) int {
	var results []check.Result
	for _, fn := range []func(check.Options) ([]check.Result, error){
		check.SamplingBounds,
		check.SamplingProperties,
	} {
		rs, err := fn(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibscheck: harness failure: %v\n", err)
			return 2
		}
		results = append(results, rs...)
	}
	for _, r := range results {
		fmt.Printf("%-4s %-42s %s (%.2fs)\n", verdict(r.Passed), r.Name, r.Detail, r.Seconds)
	}
	samp, err := check.RunSamplingBench(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibscheck: %v\n", err)
		return 2
	}
	fmt.Printf("%-4s bench/%-36s %s (%.2fs)\n", verdict(samp.Passed), "sampling-sweep", samp.Detail,
		samp.ExactSeconds+samp.SampledSeconds)
	report := check.Report{
		Schema:       "ibsim-bench/v1",
		Instructions: opt.Instructions,
		Seed:         opt.Seed,
		GoldenScale:  opt.Instructions == check.PinnedInstructions && opt.Seed == 0,
		Checks:       results,
		Sampling:     samp,
		Passed:       check.AllPassed(results) && samp.Passed,
		TotalSeconds: time.Since(start).Seconds(),
	}
	if err := writeReport(out, report); err != nil {
		fmt.Fprintf(os.Stderr, "ibscheck: %v\n", err)
		return 2
	}
	if !report.Passed {
		fmt.Println("FAIL")
		return 1
	}
	fmt.Printf("PASS (%d sampling checks, %.2fs)\n", len(results), report.TotalSeconds)
	return 0
}

// writeReport marshals and atomically writes the report (path "" disables),
// so an interrupted run never leaves a half-written or corrupt report where
// CI would read one.
func writeReport(path string, report check.Report) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("marshaling report: %w", err)
	}
	if err := atomicio.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	fmt.Printf("report: %s\n", path)
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}
