// Command ibsctl runs the cluster coordinator (internal/cluster) over a
// pool of ibsimd workers: it consistent-hashes sweep shards across the
// pool, merges the partial miss matrices, and fronts the whole thing with
// the content-addressed result cache.
//
// Worker pools come from -workers (comma-separated base URLs of already
// running ibsimd processes) or -spawn k, which forks k worker processes of
// this same binary (each serving the full ibsimd API on an ephemeral
// loopback port, exiting when ibsctl does).
//
// Modes:
//
//	-mode demo   time a sweep on one worker vs the pool, then again hot
//	             from the cache; verify the merged matrix is identical to
//	             the single-worker answer (default)
//	-mode smoke  the CI robustness gate: 3 workers, one killed mid-sweep;
//	             the merged matrix must be byte-identical to a
//	             single-process run and the hot repeat must be served from
//	             cache without touching a worker
//
// Exit codes: 0 on success, 1 on any failure or verification mismatch.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"ibsim/internal/cluster"
	"ibsim/internal/server"
	"ibsim/internal/server/client"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("ibsctl", flag.ContinueOnError)
	var (
		mode        = fs.String("mode", "demo", "demo | smoke")
		spawn       = fs.Int("spawn", 0, "spawn this many local worker processes")
		workersFlag = fs.String("workers", "", "comma-separated ibsimd base URLs (alternative to -spawn)")
		dir         = fs.String("dir", "", "durable cache/checkpoint directory (default: a fresh temp dir)")
		workload    = fs.String("workload", "mpeg_play", "workload profile to sweep")
		n           = fs.Int64("n", 2_000_000, "instructions per sweep")
		seed        = fs.Uint64("seed", 1, "workload seed offset")
		timeout     = fs.Duration("timeout", 5*time.Minute, "overall deadline")
		serveWorker = fs.Bool("serve-worker", false, "internal: run as a spawned worker process")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *serveWorker {
		return runWorker()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	var urls []string
	var procs []*workerProc
	if *workersFlag != "" {
		for _, u := range strings.Split(*workersFlag, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
	}
	want := *spawn
	if *mode == "smoke" && want == 0 && len(urls) == 0 {
		want = 3
	}
	if want > 0 {
		var err error
		procs, err = spawnWorkers(ctx, want)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibsctl: %v\n", err)
			return 1
		}
		defer func() {
			for _, p := range procs {
				p.stop()
			}
		}()
		for _, p := range procs {
			urls = append(urls, p.url)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "ibsctl: no workers; use -spawn k or -workers url,...")
		return 1
	}

	cacheDir := *dir
	if cacheDir == "" {
		var err error
		if cacheDir, err = os.MkdirTemp("", "ibsctl-*"); err != nil {
			fmt.Fprintf(os.Stderr, "ibsctl: %v\n", err)
			return 1
		}
		defer os.RemoveAll(cacheDir)
	}

	req := server.SweepRequest{
		Workload:      *workload,
		Seed:          *seed,
		Instructions:  *n,
		LineSize:      32,
		Cells:         demoGrid(),
		CountDistinct: true,
	}

	var err error
	switch *mode {
	case "demo":
		err = demo(ctx, urls, cacheDir, req)
	case "smoke":
		err = smoke(ctx, urls, procs, cacheDir, req)
	default:
		err = fmt.Errorf("unknown -mode %q (have demo, smoke)", *mode)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibsctl: %v\n", err)
		return 1
	}
	return 0
}

// demoGrid is the sweep grid the demo and smoke paths shard: the paper's
// capacity range at three associativities.
func demoGrid() []server.CellSpec {
	var cells []server.CellSpec
	for _, sets := range []int{64, 128, 256, 512, 1024, 2048} {
		for _, assoc := range []int{1, 2, 4} {
			cells = append(cells, server.CellSpec{Sets: sets, Assoc: assoc})
		}
	}
	return cells
}

// warm primes every worker's memoized trace store with the sweep's
// workload identity (one trivial cell), so the timed comparison measures
// sharded sweep compute, not redundant trace synthesis — the steady state
// the consistent-hash placement maintains across repeated sweeps.
func warm(ctx context.Context, urls []string, req server.SweepRequest) error {
	small := req
	small.Cells = req.Cells[:1]
	small.CountDistinct = false
	errs := make([]error, len(urls))
	var wg sync.WaitGroup
	for i, u := range urls {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			_, errs[i] = client.New(u).Sweep(ctx, small)
		}(i, u)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("warming %s: %w", urls[i], err)
		}
	}
	return nil
}

// newCoordinator builds a coordinator with snappy failover settings for
// interactive use.
func newCoordinator(urls []string, dir string) *cluster.Coordinator {
	return cluster.New(cluster.Config{
		Workers: urls,
		Dir:     dir,
		NewCaller: func(base string) cluster.Caller {
			return client.New(base, client.WithRetries(2), client.WithBackoff(50*time.Millisecond, time.Second))
		},
		DisableLocalFallback: true,
		Log:                  log.New(os.Stderr, "ibsctl: ", 0),
	})
}

// normalize strips the timing field so two answers for the same work can be
// compared byte for byte.
func normalize(resp *server.SweepResponse) []byte {
	c := *resp
	c.ElapsedSeconds = 0
	b, _ := json.Marshal(&c)
	return b
}

func demo(ctx context.Context, urls []string, dir string, req server.SweepRequest) error {
	fmt.Printf("pool: %d workers, grid %d cells x %d instructions of %s\n",
		len(urls), len(req.Cells), req.Instructions, req.Workload)

	if err := warm(ctx, urls, req); err != nil {
		return err
	}
	fmt.Printf("warmed   : %d worker trace stores\n", len(urls))

	one := newCoordinator(urls[:1], "")
	defer one.Close()
	start := time.Now()
	ref, err := one.Sweep(ctx, req)
	if err != nil {
		return fmt.Errorf("single-worker sweep: %w", err)
	}
	tOne := time.Since(start)
	fmt.Printf("1 worker : %v\n", tOne.Round(time.Millisecond))

	co := newCoordinator(urls, dir)
	defer co.Close()
	start = time.Now()
	merged, err := co.Sweep(ctx, req)
	if err != nil {
		return fmt.Errorf("cluster sweep: %w", err)
	}
	tAll := time.Since(start)
	note := ""
	if runtime.NumCPU() < len(urls) {
		note = fmt.Sprintf("  [only %d CPU(s); spawned workers share cores, speedup needs >= %d]",
			runtime.NumCPU(), len(urls))
	}
	fmt.Printf("%d workers: %v  (%.2fx)%s\n", len(urls), tAll.Round(time.Millisecond),
		float64(tOne)/float64(tAll), note)

	if !bytes.Equal(normalize(ref), normalize(merged)) {
		return fmt.Errorf("merged matrix differs from the single-worker answer")
	}
	fmt.Printf("merge    : %d shards, matrix identical to single-worker run\n",
		co.Metric("cluster_shards_total"))

	start = time.Now()
	hot, err := co.Sweep(ctx, req)
	if err != nil {
		return fmt.Errorf("hot sweep: %w", err)
	}
	tHot := time.Since(start)
	if !bytes.Equal(normalize(merged), normalize(hot)) {
		return fmt.Errorf("hot cache answer differs from the computed one")
	}
	fmt.Printf("hot cache: %v (cache hits %d, workers untouched)\n",
		tHot.Round(time.Microsecond), co.Metric("cluster_cache_hit_total"))

	fmt.Println("workers  :")
	for _, st := range co.Status() {
		fmt.Printf("  %-28s healthy=%v ewma=%.1fms\n", st.Addr, st.Healthy, st.EWMAMillis)
	}
	return nil
}

func smoke(ctx context.Context, urls []string, procs []*workerProc, dir string, req server.SweepRequest) error {
	if len(urls) < 3 || len(procs) < 1 {
		return fmt.Errorf("smoke needs 3 spawned workers (have %d urls, %d procs)", len(urls), len(procs))
	}
	co := newCoordinator(urls, dir)
	defer co.Close()

	// Scatter the sweep, then kill one worker while it is in flight: the
	// coordinator must re-scatter the lost shards and still merge the
	// exact answer.
	type out struct {
		resp *server.SweepResponse
		err  error
	}
	done := make(chan out, 1)
	start := time.Now()
	go func() {
		resp, err := co.Sweep(ctx, req)
		done <- out{resp, err}
	}()
	time.Sleep(100 * time.Millisecond)
	procs[0].kill()
	fmt.Printf("killed worker %s mid-sweep\n", procs[0].url)
	res := <-done
	if res.err != nil {
		return fmt.Errorf("sweep did not survive the worker kill: %w", res.err)
	}
	fmt.Printf("sweep survived: %v, rescatters=%d hedges=%d\n",
		time.Since(start).Round(time.Millisecond),
		co.Metric("cluster_rescatter_total"), co.Metric("cluster_hedge_total"))

	// Byte-identical to a single-process run (one surviving worker, no
	// cache directory).
	one := newCoordinator(urls[1:2], "")
	defer one.Close()
	ref, err := one.Sweep(ctx, req)
	if err != nil {
		return fmt.Errorf("reference sweep: %w", err)
	}
	if !bytes.Equal(normalize(ref), normalize(res.resp)) {
		return fmt.Errorf("merged matrix is NOT byte-identical to the single-process run:\n merged: %s\n single: %s",
			normalize(res.resp), normalize(ref))
	}
	fmt.Println("merged matrix byte-identical to single-process run")

	// Hot repeat: served from cache without touching any worker, proven by
	// the coordinator's own expvar counters.
	shardsBefore := co.Metric("cluster_shards_total")
	hitsBefore := co.Metric("cluster_cache_hit_total")
	start = time.Now()
	hot, err := co.Sweep(ctx, req)
	if err != nil {
		return fmt.Errorf("hot sweep: %w", err)
	}
	tHot := time.Since(start)
	if !bytes.Equal(normalize(hot), normalize(res.resp)) {
		return fmt.Errorf("hot cache answer differs from the computed one")
	}
	if co.Metric("cluster_cache_hit_total") != hitsBefore+1 {
		return fmt.Errorf("hot sweep was not a cache hit (cluster_cache_hit_total=%d)",
			co.Metric("cluster_cache_hit_total"))
	}
	if co.Metric("cluster_shards_total") != shardsBefore {
		return fmt.Errorf("hot sweep scattered %d shards; cache should have served it",
			co.Metric("cluster_shards_total")-shardsBefore)
	}
	fmt.Printf("hot cache: %v, no shards scattered\n", tHot.Round(time.Microsecond))
	fmt.Println("cluster smoke PASS")
	return nil
}

// workerProc is one spawned worker subprocess.
type workerProc struct {
	cmd   *exec.Cmd
	url   string
	stdin io.WriteCloser
}

// stop ends the worker gracefully (closing its stdin) and reaps it.
func (p *workerProc) stop() {
	if p.cmd.ProcessState != nil {
		return
	}
	p.stdin.Close()
	donec := make(chan struct{})
	go func() { p.cmd.Wait(); close(donec) }()
	select {
	case <-donec:
	case <-time.After(3 * time.Second):
		p.cmd.Process.Kill()
		<-donec
	}
}

// kill terminates the worker abruptly — the smoke scenario's mid-sweep
// failure.
func (p *workerProc) kill() {
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

// spawnWorkers forks n copies of this binary in -serve-worker mode and
// waits for each to report its listen address.
func spawnWorkers(ctx context.Context, n int) ([]*workerProc, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("resolving own binary: %w", err)
	}
	var procs []*workerProc
	fail := func(err error) ([]*workerProc, error) {
		for _, p := range procs {
			p.kill()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe, "-serve-worker")
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return fail(err)
		}
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return fail(err)
		}
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("spawning worker %d: %w", i, err))
		}
		p := &workerProc{cmd: cmd, stdin: stdin}
		url, err := awaitListen(ctx, stdout)
		if err != nil {
			p.kill()
			return fail(fmt.Errorf("worker %d: %w", i, err))
		}
		p.url = url
		procs = append(procs, p)
	}
	return procs, nil
}

// awaitListen reads the worker's "LISTEN <url>" handshake line.
func awaitListen(ctx context.Context, stdout io.Reader) (string, error) {
	type line struct {
		url string
		err error
	}
	ch := make(chan line, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if u, ok := strings.CutPrefix(sc.Text(), "LISTEN "); ok {
				ch <- line{url: u}
				return
			}
		}
		ch <- line{err: fmt.Errorf("worker exited before announcing its address")}
	}()
	select {
	case l := <-ch:
		return l.url, l.err
	case <-ctx.Done():
		return "", ctx.Err()
	case <-time.After(10 * time.Second):
		return "", fmt.Errorf("timed out waiting for worker to listen")
	}
}

// runWorker is the -serve-worker entry: a full ibsimd server on an
// ephemeral loopback port, announced on stdout, alive until stdin closes
// (parent exit) or a signal arrives.
func runWorker() int {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibsctl worker: %v\n", err)
		return 1
	}
	fmt.Printf("LISTEN http://%s\n", ln.Addr())
	os.Stdout.Sync()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithCancel(ctx)
	go func() {
		io.Copy(io.Discard, os.Stdin) // parent closing our stdin is the shutdown signal
		cancel()
	}()

	logger := log.New(os.Stderr, fmt.Sprintf("worker[%s]: ", ln.Addr()), 0)
	cfg := server.Config{DrainTimeout: 2 * time.Second, Log: logger}
	if err := server.New(cfg).Run(ctx, ln); err != nil {
		logger.Printf("serve: %v", err)
		return 1
	}
	return 0
}
