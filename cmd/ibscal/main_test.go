package main

import (
	"testing"

	"ibsim/internal/cache"
	"ibsim/internal/synth"
)

func TestMPIHelper(t *testing.T) {
	p, err := synth.Lookup("eqntott")
	if err != nil {
		t.Fatal(err)
	}
	got, err := mpi(p, cache.Config{Size: 8192, LineSize: 32, Assoc: 1}, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	// eqntott is calibrated to ~0.2 per 100 at 8 KB; allow a wide band at
	// reduced trace length.
	if got < 0.02 || got > 1.0 {
		t.Fatalf("eqntott MPI = %.3f per 100, outside sanity band", got)
	}
	if _, err := mpi(p, cache.Config{Size: 7}, 100); err == nil {
		t.Fatal("invalid cache accepted")
	}
}

func TestRunReport(t *testing.T) {
	// The calibration report itself at a tiny budget: exercises every
	// registered workload once and must not error.
	if err := run(30_000, false); err != nil {
		t.Fatal(err)
	}
}
