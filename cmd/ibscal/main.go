// Command ibscal reports the calibration status of the synthetic workload
// models: simulated miss ratios for each workload against the targets the
// paper prints (Table 4, Figure 1). It exists because the workload profiles
// in internal/synth are calibrated empirically; re-run it after touching any
// profile parameter.
//
// Usage:
//
//	ibscal [-n instructions] [-sizes] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"ibsim/internal/cache"
	"ibsim/internal/cpi"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

func main() {
	n := flag.Int64("n", 2_000_000, "instructions to simulate per workload")
	sizes := flag.Bool("sizes", false, "also print the Figure 1 size sweep")
	cpiFlag := flag.Bool("cpi", false, "also print the Table 1/3 CPI component calibration")
	flag.Parse()

	if err := run(*n, *sizes); err != nil {
		fmt.Fprintln(os.Stderr, "ibscal:", err)
		os.Exit(1)
	}
	if *cpiFlag {
		if err := runCPI(*n); err != nil {
			fmt.Fprintln(os.Stderr, "ibscal:", err)
			os.Exit(1)
		}
	}
}

// runCPI prints the DECstation 3100 component calibration against Tables 1
// and 3.
func runCPI(n int64) error {
	sim := func(p synth.Profile) (cpi.Components, float64, error) {
		g, err := synth.NewGenerator(p, 0)
		if err != nil {
			return cpi.Components{}, 0, fmt.Errorf("generator for %s: %w", p.Name, err)
		}
		s := cpi.NewSystem()
		for s.Instructions() < n {
			r, _ := g.Next()
			s.Process(r)
		}
		return s.Components(), s.UserShare(), nil
	}
	fmt.Println("\n== Table 1: SPEC suites on DECstation 3100 ==")
	targets := map[string][5]float64{ // total, instr, data, tlb, write
		"specint89": {0.285, 0.067, 0.100, 0.044, 0.074},
		"specfp89":  {0.967, 0.100, 0.668, 0.020, 0.179},
		"specint92": {0.271, 0.051, 0.084, 0.073, 0.063},
		"specfp92":  {0.749, 0.053, 0.436, 0.134, 0.126},
	}
	fmt.Printf("%-10s %26s %26s\n", "suite", "target(tot/i/d/tlb/w)", "got(tot/i/d/tlb/w)")
	for _, p := range synth.SPECSuites() {
		c, _, err := sim(p)
		if err != nil {
			return err
		}
		t := targets[p.Name]
		fmt.Printf("%-10s %5.2f/%.3f/%.3f/%.3f/%.3f %5.2f/%.3f/%.3f/%.3f/%.3f\n",
			p.Name, t[0], t[1], t[2], t[3], t[4],
			c.Total(), c.Instr, c.Data, c.TLB, c.Write)
	}
	fmt.Println("\n== Table 3: IBS on DECstation 3100 (targets: Mach .36/.28/.16 user 62%; Ultrix .19/.30/.11 user 76%) ==")
	var mach, ultrix cpi.Components
	var muser, uuser float64
	for _, p := range synth.IBSMach() {
		c, u, err := sim(p)
		if err != nil {
			return err
		}
		mach.Instr += c.Instr / 8
		mach.Data += c.Data / 8
		mach.Write += c.Write / 8
		mach.TLB += c.TLB / 8
		muser += u / 8
	}
	for _, p := range synth.IBSUltrix() {
		c, u, err := sim(p)
		if err != nil {
			return err
		}
		ultrix.Instr += c.Instr / 8
		ultrix.Data += c.Data / 8
		ultrix.Write += c.Write / 8
		ultrix.TLB += c.TLB / 8
		uuser += u / 8
	}
	fmt.Printf("IBS/Mach:   instr=%.3f data=%.3f write=%.3f tlb=%.3f user=%.0f%%\n",
		mach.Instr, mach.Data, mach.Write, mach.TLB, muser*100)
	fmt.Printf("IBS/Ultrix: instr=%.3f data=%.3f write=%.3f tlb=%.3f user=%.0f%%\n",
		ultrix.Instr, ultrix.Data, ultrix.Write, ultrix.TLB, uuser*100)
	return nil
}

// mpi simulates an I-cache over prof's instruction stream and returns misses
// per 100 instructions.
func mpi(prof synth.Profile, cfg cache.Config, n int64) (float64, error) {
	refs, err := synth.InstrTrace(prof, 0, n)
	if err != nil {
		return 0, err
	}
	c, err := cache.New(cfg)
	if err != nil {
		return 0, err
	}
	for _, r := range refs {
		c.Access(r.Addr)
	}
	st := c.Stats()
	return 100 * float64(st.Misses) / float64(st.Accesses), nil
}

func run(n int64, sizes bool) error {
	base := cache.Config{Size: 8192, LineSize: 32, Assoc: 1}

	targets := map[string]float64{
		"mpeg_play": 4.28, "jpeg_play": 2.39, "gs": 5.15, "verilog": 5.28,
		"gcc": 4.69, "sdet": 6.05, "nroff": 3.99, "groff": 6.51,
	}

	fmt.Printf("== IBS under Mach 3.0 (8-KB DM, 32-B line), %d instr ==\n", n)
	fmt.Printf("%-12s %8s %8s %8s\n", "workload", "target", "got", "err%")
	var sum float64
	for _, p := range synth.IBSMach() {
		got, err := mpi(p, base, n)
		if err != nil {
			return err
		}
		sum += got
		tgt := targets[p.Name]
		fmt.Printf("%-12s %8.2f %8.2f %+7.1f%%\n", p.Name, tgt, got, 100*(got-tgt)/tgt)
	}
	fmt.Printf("%-12s %8.2f %8.2f\n\n", "AVG", 4.79, sum/8)

	sum = 0
	fmt.Println("== IBS under Ultrix 3.1 ==")
	for _, p := range synth.IBSUltrix() {
		got, err := mpi(p, base, n)
		if err != nil {
			return err
		}
		sum += got
		fmt.Printf("%-12s %8s %8.2f\n", p.Name, "-", got)
	}
	fmt.Printf("%-12s %8.2f %8.2f\n\n", "AVG", 3.52, sum/8)

	fmt.Println("== SPEC92 (Gee et al. sizes: eqntott small, espresso medium, gcc large) ==")
	specTargets := map[string]float64{"eqntott": 0.2, "espresso": 0.8, "spec_gcc": 2.3}
	sum = 0
	for _, p := range synth.SPEC92() {
		got, err := mpi(p, base, n)
		if err != nil {
			return err
		}
		sum += got
		fmt.Printf("%-12s %8.2f %8.2f\n", p.Name, specTargets[p.Name], got)
	}
	fmt.Printf("%-12s %8.2f %8.2f  (suite avg target 1.10)\n\n", "AVG", 1.10, sum/3)

	// Domain share check for one workload.
	g, err := synth.NewGenerator(synth.IBSMach()[0], 0)
	if err != nil {
		return err
	}
	for g.Instructions() < 500000 {
		g.Next()
	}
	fmt.Printf("mpeg_play shares: user %.2f kernel %.2f bsd %.2f x %.2f (want .40/.23/.30/.07)\n\n",
		g.DomainShare(trace.User), g.DomainShare(trace.Kernel),
		g.DomainShare(trace.BSDServer), g.DomainShare(trace.XServer))

	if sizes {
		fmt.Println("== Figure 1 sweep: suite-average MPI (DM, 32-B line) ==")
		fmt.Printf("%-8s %10s %10s\n", "size", "SPEC92", "IBS/Mach")
		for _, kb := range []int{8, 16, 32, 64, 128, 256} {
			cfg := cache.Config{Size: kb * 1024, LineSize: 32, Assoc: 1}
			var specSum float64
			for _, p := range synth.SPEC92() {
				got, err := mpi(p, cfg, n)
				if err != nil {
					return err
				}
				specSum += got
			}
			var ibsSum float64
			for _, p := range synth.IBSMach() {
				got, err := mpi(p, cfg, n)
				if err != nil {
					return err
				}
				ibsSum += got
			}
			fmt.Printf("%-8d %10.2f %10.2f\n", kb, specSum/3, ibsSum/8)
		}
	}
	return nil
}
