package ibsim

import "testing"

// The benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each iteration regenerates the exhibit at a reduced
// per-workload instruction budget (the paper-scale run is
// `go run ./cmd/ibstables`), and the headline values of the exhibit are
// attached as custom benchmark metrics so `go test -bench` output doubles as
// a miniature reproduction log.

// benchOpt keeps a single benchmark iteration around a second.
var benchOpt = Options{Instructions: 250_000, Trials: 3}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Table1(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				b.ReportMetric(row.Components.Total(), row.Suite+"-CPI")
			}
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Table3(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Rows[0].Instr, "mach-CPIinstr")
			b.ReportMetric(res.Rows[1].Instr, "ultrix-CPIinstr")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Table4(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MachAvg, "mach-avg-MPI")
			b.ReportMetric(res.UltrixAvg, "ultrix-avg-MPI")
			b.ReportMetric(res.SPECAvg, "spec-avg-MPI")
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Table5(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.EconomyIBS, "economy-IBS-CPI")
			b.ReportMetric(res.HighPerfIBS, "hp-IBS-CPI")
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Table6(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Grid.CPI[0][2], "line64-N0-CPI")
			b.ReportMetric(res.Grid.CPI[3][0], "line16-N3-CPI")
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Table7(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.NoBypass.CPI[3][0], "nobypass-16-N3")
			b.ReportMetric(res.Bypass.CPI[3][0], "bypass-16-N3")
		}
	}
}

func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Table8(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Rows[0].CPI16, "depth0-16B-CPI")
			b.ReportMetric(res.Rows[3].CPI16, "depth6-16B-CPI")
			b.ReportMetric(res.Rows[5].CPI16, "depth18-16B-CPI")
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Figure1(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.IBS[0].Total, "IBS-8KB-MPI")
			b.ReportMetric(res.SPEC[0].Total, "SPEC-8KB-MPI")
			b.ReportMetric(res.IBS[3].Total, "IBS-64KB-MPI")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Figure3(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range res.Economy {
				if p.L2SizeKB == 64 && p.L2LineSize == 64 {
					b.ReportMetric(p.Total(), "eco-64KB-64B-total")
				}
			}
			b.ReportMetric(res.HighPerfBase, "hp-baseline")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Figure4(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Economy[0].Total(), "eco-1way-total")
			b.ReportMetric(res.Economy[3].Total(), "eco-8way-total")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	opt := Options{Instructions: 100_000, Trials: 3}
	for i := 0; i < b.N; i++ {
		res, err := Figure5(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var maxDM, max4 float64
			for _, p := range res.Points {
				if p.Workload != "verilog" {
					continue
				}
				if p.Assoc == 1 && p.StdDev > maxDM {
					maxDM = p.StdDev
				}
				if p.Assoc == 4 && p.StdDev > max4 {
					max4 = p.StdDev
				}
			}
			b.ReportMetric(maxDM, "verilog-1way-max-sd")
			b.ReportMetric(max4, "verilog-4way-max-sd")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Figure6(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			opt16, cpi16 := res.Optimal(16)
			b.ReportMetric(float64(opt16), "optimal-line-16Bcyc")
			b.ReportMetric(cpi16, "best-CPI-16Bcyc")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Figure7(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.HighPerf[0].Total(), "hp-baseline")
			b.ReportMetric(res.HighPerf[5].Total(), "hp-final")
			b.ReportMetric(res.Economy[0].Total(), "eco-baseline")
			b.ReportMetric(res.Economy[5].Total(), "eco-final")
		}
	}
}

// BenchmarkTraceGeneration measures raw workload-generation throughput
// (references per second), the substrate every experiment stands on.
func BenchmarkTraceGeneration(b *testing.B) {
	w, err := LoadWorkload("gs")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateInstructionTrace(w, 100_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheSimulation measures raw cache-simulation throughput.
func BenchmarkCacheSimulation(b *testing.B) {
	w, _ := LoadWorkload("gs")
	refs, err := GenerateInstructionTrace(w, 500_000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := CacheConfig{Size: 8192, LineSize: 32, Assoc: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayCache(refs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
