// Codebloat walks through the software-development practices the paper
// blames for instruction-cache pressure, measuring each with the library:
//
//  1. Maintainability — object-oriented rewrites: groff (C++) vs nroff (C)
//     on the same input.
//  2. Maintainability — microkernel structure: the same workloads under
//     Mach 3.0 vs Ultrix 3.1.
//  3. Functionality — feature growth: gcc's footprint scaled release over
//     release.
package main

import (
	"fmt"
	"log"

	"ibsim"
)

const instructions = 1_000_000

var cache8k = ibsim.CacheConfig{Size: 8 * 1024, LineSize: 32, Assoc: 1}

// mpi returns misses per 100 instructions for a workload in the 8-KB cache.
func mpi(w ibsim.Workload) float64 {
	st, err := ibsim.SimulateCache(w, cache8k, instructions)
	if err != nil {
		log.Fatal(err)
	}
	return 100 * st.MissRatio()
}

func load(name string) ibsim.Workload {
	w, err := ibsim.LoadWorkload(name)
	if err != nil {
		log.Fatal(err)
	}
	return w
}

func main() {
	fmt.Println("== 1. Object-oriented rewrite: nroff (C) vs groff (C++) ==")
	nroff := mpi(load("nroff"))
	groff := mpi(load("groff"))
	fmt.Printf("nroff MPI: %.2f   groff MPI: %.2f   penalty: +%.0f%%\n",
		nroff, groff, 100*(groff-nroff)/nroff)
	fmt.Println("(the paper measures groff ~60% higher on the same input)")

	fmt.Println("\n== 2. Microkernel structure: Mach 3.0 vs Ultrix 3.1 ==")
	var machSum, ultrixSum float64
	for _, w := range ibsim.IBSMach() {
		machSum += mpi(w) / 8
	}
	for _, w := range ibsim.IBSUltrix() {
		ultrixSum += mpi(w) / 8
	}
	fmt.Printf("IBS average MPI under Mach: %.2f   under Ultrix: %.2f   penalty: +%.0f%%\n",
		machSum, ultrixSum, 100*(machSum-ultrixSum)/ultrixSum)
	fmt.Println("(the paper measures the Mach penalty at ~35%)")

	fmt.Println("\n== 3. Feature growth: scaling gcc's code footprint ==")
	gcc := load("gcc")
	for _, scale := range []float64{0.85, 1.0, 1.15, 1.5, 2.0} {
		scaled := gcc.Scale(scale)
		fmt.Printf("footprint x%.2f (%4.0f KB): MPI %.2f\n",
			scale, float64(scaled.Footprint())/1024, mpi(scaled))
	}
	fmt.Println("(the paper notes IBS gcc 2.6 misses ~15% more than SPEC's older gcc)")
}
