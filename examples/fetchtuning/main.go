// Fetchtuning climbs the paper's Section 5 optimization ladder on one
// workload, printing the L1 CPIinstr at each rung: baseline memory → on-chip
// L2 → tuned line size → sequential prefetch → bypass buffers → pipelined
// stream buffer. This is Figure 7 as an interactive walk.
package main

import (
	"flag"
	"fmt"
	"log"

	"ibsim"
)

const instructions = 1_500_000

func main() {
	name := flag.String("workload", "verilog", "workload to tune for")
	flag.Parse()

	w, err := ibsim.LoadWorkload(*name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuning instruction fetch for %s (%s)\n\n", w.Name, w.Description)

	l1 := ibsim.CacheConfig{Size: 8 * 1024, LineSize: 32, Assoc: 1}
	run := func(label string, fc ibsim.FetchConfig) float64 {
		res, err := ibsim.SimulateFetch(w, fc, instructions)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-46s CPIinstr %.3f   (MPI %.2f/100)\n", label, res.CPIinstr(), 100*res.MPI())
		return res.CPIinstr()
	}

	base := run("baseline: economy memory (30 cyc, 4 B/cyc)",
		ibsim.FetchConfig{L1: l1, Link: ibsim.EconomyMemory()})
	run("baseline: high-perf off-chip cache (12 cyc, 8 B/cyc)",
		ibsim.FetchConfig{L1: l1, Link: ibsim.HighPerformanceMemory()})

	link := ibsim.OnChipL2Link()
	l2 := run("+ on-chip L2 (6 cyc, 16 B/cyc; L1 side only)",
		ibsim.FetchConfig{L1: l1, Link: link})

	tuned := l1
	tuned.LineSize = 64
	run("+ tuned 64-B line", ibsim.FetchConfig{L1: tuned, Link: link})

	short := l1
	short.LineSize = 16
	run("+ 16-B line, prefetch 3",
		ibsim.FetchConfig{L1: short, Link: link, PrefetchLines: 3})
	run("+ bypass buffers",
		ibsim.FetchConfig{L1: short, Link: link, PrefetchLines: 3, Bypass: true})
	final := run("+ pipelined memory, 18-line stream buffer",
		ibsim.FetchConfig{L1: short, Link: link, StreamBufferLines: 18})

	fmt.Printf("\nL1 stalls reduced %.1fx from the economy baseline (%.2f -> %.2f);\n",
		base/final, base, final)
	fmt.Printf("on-chip L2 alone bought %.1fx — the paper's 'dramatic' first step.\n", base/l2)
	fmt.Println("Note the stubborn floor: even fully tuned, CPIinstr stays ~0.1-0.2 under IBS.")
}
