// Tracefiles demonstrates the distributable trace artifact: it writes an
// IBSTRACE file for an IBS workload (the library's equivalent of the address
// traces the authors shared with the research community), reads it back,
// and verifies that replaying the file reproduces the exact simulation
// results of direct generation.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ibsim"
)

const instructions = 500_000

func main() {
	dir, err := os.MkdirTemp("", "ibstraces")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	w, err := ibsim.LoadWorkload("mpeg_play")
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, "mpeg_play.ibstrace")

	written, err := ibsim.WriteTraceFile(path, w, instructions)
	if err != nil {
		log.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d references in %.1f MB (%.2f bytes/ref — delta+varint encoding)\n",
		filepath.Base(path), written, float64(st.Size())/1e6, float64(st.Size())/float64(written))

	refs, err := ibsim.ReadTraceFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back %d references\n\n", len(refs))

	// Replaying the file must be bit-identical to regenerating the trace.
	cfg := ibsim.CacheConfig{Size: 8 * 1024, LineSize: 32, Assoc: 1}
	fromFile, err := ibsim.ReplayCache(refs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fresh, err := ibsim.GenerateTrace(w, instructions)
	if err != nil {
		log.Fatal(err)
	}
	direct, err := ibsim.ReplayCache(fresh, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay from file:   %d accesses, %d misses\n", fromFile.Accesses, fromFile.Misses)
	fmt.Printf("replay from memory: %d accesses, %d misses\n", direct.Accesses, direct.Misses)
	if fromFile != direct {
		log.Fatal("MISMATCH: file replay diverged from direct generation")
	}
	fmt.Println("identical — the trace file is a faithful, reproducible artifact")
}
