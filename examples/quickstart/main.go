// Quickstart: load an IBS workload, simulate an 8-KB direct-mapped
// instruction cache over it, and print the miss ratio — the measurement at
// the heart of the paper's Table 4.
package main

import (
	"fmt"
	"log"

	"ibsim"
)

func main() {
	w, err := ibsim.LoadWorkload("gs")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %s\n", w.Name, w.Description)
	fmt.Printf("code footprint: %.0f KB across %d protection domains\n\n",
		float64(w.Footprint())/1024, len(w.ActiveDomains()))

	const instructions = 1_000_000
	cfg := ibsim.CacheConfig{Size: 8 * 1024, LineSize: 32, Assoc: 1}
	st, err := ibsim.SimulateCache(w, cfg, instructions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("I-cache %v over %d instructions:\n", cfg, instructions)
	fmt.Printf("  misses: %d (%.2f per 100 instructions)\n", st.Misses, 100*st.MissRatio())

	// The same cache fed a SPEC workload barely misses — the paper's core
	// observation.
	spec, err := ibsim.LoadWorkload("eqntott")
	if err != nil {
		log.Fatal(err)
	}
	st2, err := ibsim.SimulateCache(spec, cfg, instructions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfor comparison, SPEC92 eqntott in the same cache:\n")
	fmt.Printf("  misses: %d (%.2f per 100 instructions)\n", st2.Misses, 100*st2.MissRatio())
	fmt.Printf("\nIBS/SPEC miss-ratio ratio: %.1fx\n", st.MissRatio()/st2.MissRatio())
}
