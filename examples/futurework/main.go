// Futurework runs the studies the paper's conclusion invites ("we hope to
// encourage the exploration of these more sophisticated hardware mechanisms
// on demanding workloads"): multi-way stream buffers, victim caches, the
// multi-issue impact of the fetch floor, and the software-side alternative
// of profile-guided code placement.
package main

import (
	"fmt"
	"log"

	"ibsim"
)

func main() {
	opt := ibsim.Options{Instructions: 500_000, Trials: 3}

	fmt.Println("== Multi-way stream buffers (non-sequential prefetching) ==")
	ms, err := ibsim.ExtensionMultiStream(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ms.Render())

	fmt.Println("== Victim caches vs associativity ==")
	vc, err := ibsim.ExtensionVictim(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(vc.Render())

	fmt.Println("== The fetch floor on multi-issue machines ==")
	iw, err := ibsim.ExtensionIssueWidth(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(iw.Render())

	fmt.Println("== Profile-guided procedure placement (software-side) ==")
	pl, err := ibsim.ExtensionPlacement(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(pl.Render())
}
