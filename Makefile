# ibsim — reproduction of "Instruction Fetching: Coping with Code Bloat"
# (ISCA 1995). Stdlib-only Go; see README.md.

GO ?= go

.PHONY: all build test test-short race check check-sampling bench-columnar bench-seek chaos crash cluster cluster-smoke serve bench microbench vet cover tables extensions calibration examples clean

all: build vet test race check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-certify the parallel experiment runners (includes the
# parallel-vs-serial differential test in internal/experiments).
race:
	$(GO) test -race -short ./...

# Simulator verification + benchmark regression: invariant checks,
# differential tests, and the pinned golden comparison. Writes
# BENCH_ibsim.json.
check: vet
	$(GO) run ./cmd/ibscheck -n 200000

# Sampled-simulation verification: CI95 calibration of the set- and
# time-sampled engines against exact sweeps, the warm-unbiasedness and
# cold-bias statistical properties, the sampled-vs-exact speedup gate, and
# the sampling property/engine tests under the race detector. (Flags must
# precede the stage name: the Go flag parser stops at the first positional.)
check-sampling:
	$(GO) run ./cmd/ibscheck -o "" -n 200000 sampling-bounds
	$(GO) test -race -run 'Sampl' ./internal/sampling ./internal/sweep \
		./internal/replay ./internal/check ./internal/server

# Columnar (IBSTRACE/v3) verification: the block-replay and block-sweep
# differentials (mmap + ReaderAt modes vs in-memory, bit-exact) plus the
# zero-copy replay benchmark gate — a trace 10x the store's hard RAM budget
# must replay from disk with flat RSS at near-parity throughput. (Flags must
# precede the stage name: the Go flag parser stops at the first positional.)
bench-columnar:
	$(GO) run ./cmd/ibscheck -o "" -n 200000 columnar-replay

# Checkpoint-seek verification: the seek-sampled differential (RunSeek /
# SampledSeek bit-identical to the run-materialized sampled paths), the
# parallel-spill byte-identity differential, and the seek-vs-stream speedup
# gate — a skip-mode sampled sweep at 1/16 window coverage on an over-budget
# store must beat full streaming regeneration by the pinned ratio. (Flags
# must precede the stage name: the Go flag parser stops at the first
# positional.)
bench-seek:
	$(GO) run ./cmd/ibscheck -o "" -n 200000 seek

# Seeded fault-injection (chaos) suite under the race detector: trace-codec
# corruption contracts, store budget fallback, checkpoint corruption
# (bit-flipped generator snapshots caught by CRC, seek self-heals by
# regeneration), worker panic isolation, the
# ibstables interrupt/resume test, the service admission/degradation tests,
# the in-process server chaos scenarios (slow-loris, cancellation,
# over-budget degradation, handler panic), and the cluster coordinator
# scenarios (worker kill mid-sweep, hung-worker hedging, corrupt partial,
# cache poisoning, all-workers-lost local fallback).
chaos:
	$(GO) test -race ./internal/fault ./internal/atomicio ./internal/manifest \
		./internal/server ./internal/server/client ./internal/cluster ./cmd/ibsimd
	$(GO) test -race -run 'Chaos|Robustness|Resilience|Worker|Salvage|Interrupt|Timeout|Stress|Checkpoint|Seek' \
		./internal/trace ./internal/check ./internal/experiments \
		./internal/synth ./cmd/ibstables
	$(GO) run -race ./cmd/ibscheck -faults -o ""

# Crash-consistency torture under the race detector: power-fail every
# persistence op (atomic artifact writes, columnar spill publication,
# cluster shard checkpoints, the result cache, the exhibit manifest) in
# three durability variants (lost / torn / flushed), verify every recovery,
# plus the corruption property tests seeded from crashfs images and the
# goroutine-leak brackets around server drain and coordinator shutdown.
# The negative control (TestCrashTortureCatchesUnsafeWriter) proves the
# harness itself catches unsafe writers.
crash:
	$(GO) test -race -run 'Crash|Leak' ./internal/crashfs ./internal/atomicio \
		./internal/manifest ./internal/cluster ./internal/synth \
		./internal/check ./internal/server
	$(GO) run -race ./cmd/ibscheck -faults -match '^chaos/crash-' -o ""

# Cluster scale-out demo: spawn 3 local ibsimd workers, run the same sweep
# through 1 worker and through the pool, verify the merged miss matrix is
# byte-identical, then serve the sweep again from the content-addressed
# result cache without touching a worker.
cluster:
	$(GO) run ./cmd/ibsctl -mode demo -spawn 3

# Cluster robustness smoke (the CI gate): 3 spawned workers, one killed
# abruptly mid-sweep. The sweep must survive via re-scatter, merge
# byte-identical to a single-process run, and the hot repeat must be a
# pure cache hit that scatters no shards.
cluster-smoke:
	$(GO) run ./cmd/ibsctl -mode smoke -spawn 3

# Run the simulation service on the default loopback address.
serve:
	$(GO) run ./cmd/ibsimd

# Benchmark-regression run: times the pinned stages plus the Figure 3+4
# sweep-vs-per-config and Tables 5-8 + Figures 6/7 fanout-vs-per-config
# comparisons and the columnar zero-copy replay gate at the golden scale,
# records wall-clock and speedups in BENCH_ibsim.json, and exits non-zero
# if any gated ratio regresses more than 20% against its recorded
# baseline. Also runs the bulk-replay microbenchmarks (trace compaction,
# per-ref vs FetchRun replay, columnar encode/decode).
bench:
	$(GO) run ./cmd/ibscheck -bench-only -n 200000
	$(GO) test -run='^$$' -bench='CompactAppend|FetchPerRef|FetchRun|Columnar' -benchmem \
		./internal/trace ./internal/fetch

# Go microbenchmarks (cache hot path, sweep engine, generators).
microbench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./...

# Regenerate every paper table and figure (EXPERIMENTS.md scale).
tables:
	$(GO) run ./cmd/ibstables -n 2000000 -trials 5

# The beyond-the-paper extension/ablation/methodology studies.
extensions:
	$(GO) run ./cmd/ibstables -extensions -n 1000000

# Workload-model calibration report against the paper's published values.
calibration:
	$(GO) run ./cmd/ibscal -n 2000000 -sizes -cpi

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/codebloat
	$(GO) run ./examples/fetchtuning
	$(GO) run ./examples/tracefiles
	$(GO) run ./examples/futurework

clean:
	$(GO) clean ./...
