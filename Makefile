# ibsim — reproduction of "Instruction Fetching: Coping with Code Bloat"
# (ISCA 1995). Stdlib-only Go; see README.md.

GO ?= go

.PHONY: all build test test-short race check bench vet cover tables extensions calibration examples clean

all: build vet test race check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-certify the parallel experiment runners (includes the
# parallel-vs-serial differential test in internal/experiments).
race:
	$(GO) test -race -short ./...

# Simulator verification + benchmark regression: invariant checks,
# differential tests, and the pinned golden comparison. Writes
# BENCH_ibsim.json.
check:
	$(GO) run ./cmd/ibscheck -n 200000

bench:
	$(GO) test -bench=. -benchmem .

cover:
	$(GO) test -cover ./...

# Regenerate every paper table and figure (EXPERIMENTS.md scale).
tables:
	$(GO) run ./cmd/ibstables -n 2000000 -trials 5

# The beyond-the-paper extension/ablation/methodology studies.
extensions:
	$(GO) run ./cmd/ibstables -extensions -n 1000000

# Workload-model calibration report against the paper's published values.
calibration:
	$(GO) run ./cmd/ibscal -n 2000000 -sizes -cpi

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/codebloat
	$(GO) run ./examples/fetchtuning
	$(GO) run ./examples/tracefiles
	$(GO) run ./examples/futurework

clean:
	$(GO) clean ./...
