package ibsim

import (
	"path/filepath"
	"testing"
)

func TestWorkloadsRegistry(t *testing.T) {
	names := Workloads()
	if len(names) != 23 {
		t.Fatalf("Workloads() = %d entries", len(names))
	}
	w, err := LoadWorkload("gs")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "gs" {
		t.Fatalf("Name = %q", w.Name)
	}
	if _, err := LoadWorkload("bogus"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if len(IBSMach()) != 8 || len(IBSUltrix()) != 8 || len(SPEC92()) != 3 {
		t.Fatal("suite constructors wrong")
	}
}

func TestGenerateTrace(t *testing.T) {
	w, _ := LoadWorkload("eqntott")
	refs, err := GenerateTrace(w, 10000)
	if err != nil {
		t.Fatal(err)
	}
	instr := 0
	for _, r := range refs {
		if r.Kind == IFetch {
			instr++
		}
	}
	if instr < 10000 {
		t.Fatalf("instructions = %d", instr)
	}
	only, err := GenerateInstructionTrace(w, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(only) != 5000 {
		t.Fatalf("instruction trace = %d refs", len(only))
	}
	for _, r := range only {
		if r.Kind != IFetch {
			t.Fatal("data ref in instruction trace")
		}
	}
}

func TestSimulateCache(t *testing.T) {
	w, _ := LoadWorkload("gs")
	st, err := SimulateCache(w, CacheConfig{Size: 8192, LineSize: 32, Assoc: 1}, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses != 200000 {
		t.Fatalf("accesses = %d", st.Accesses)
	}
	mpi := st.MissRatio()
	if mpi < 0.02 || mpi > 0.10 {
		t.Fatalf("gs MPI = %.4f, out of calibrated band", mpi)
	}
	if _, err := SimulateCache(w, CacheConfig{Size: 7}, 10); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestSimulateFetchEngines(t *testing.T) {
	w, _ := LoadWorkload("verilog")
	l1 := CacheConfig{Size: 8192, LineSize: 16, Assoc: 1}
	link := OnChipL2Link()
	block, err := SimulateFetch(w, FetchConfig{L1: l1, Link: link}, 200000)
	if err != nil {
		t.Fatal(err)
	}
	bypass, err := SimulateFetch(w, FetchConfig{L1: l1, Link: link, PrefetchLines: 3, Bypass: true}, 200000)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := SimulateFetch(w, FetchConfig{L1: l1, Link: link, StreamBufferLines: 6}, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !(bypass.CPIinstr() < block.CPIinstr()) {
		t.Errorf("bypass (%.3f) not below blocking (%.3f)", bypass.CPIinstr(), block.CPIinstr())
	}
	if !(stream.CPIinstr() < block.CPIinstr()) {
		t.Errorf("stream (%.3f) not below blocking (%.3f)", stream.CPIinstr(), block.CPIinstr())
	}
	if stream.BufferHits == 0 {
		t.Error("stream engine reported no buffer hits")
	}
}

func TestSimulateSystem(t *testing.T) {
	w, _ := LoadWorkload("sdet")
	comp, user, err := SimulateSystem(w, 150000)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Total() <= 0 {
		t.Fatal("zero CPI")
	}
	// sdet is 10% user / 90% OS under Mach.
	if user > 0.2 {
		t.Fatalf("sdet user share = %.2f, want ~0.10", user)
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	w, _ := LoadWorkload("nroff")
	path := filepath.Join(t.TempDir(), "nroff.ibstrace")
	written, err := WriteTraceFile(path, w, 20000)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(refs)) != written {
		t.Fatalf("read %d refs, wrote %d", len(refs), written)
	}
	// Replaying the file matches replaying a fresh generation.
	fresh, err := GenerateTrace(w, 20000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := CacheConfig{Size: 8192, LineSize: 32, Assoc: 1}
	a, err := ReplayCache(refs[:len(fresh)], cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayCache(fresh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Misses != b.Misses {
		t.Fatalf("file replay misses %d != fresh replay %d", a.Misses, b.Misses)
	}
}

func TestReplayFetch(t *testing.T) {
	w, _ := LoadWorkload("eqntott")
	refs, _ := GenerateInstructionTrace(w, 50000)
	res, err := ReplayFetch(refs, FetchConfig{
		L1:   CacheConfig{Size: 8192, LineSize: 32, Assoc: 1},
		Link: OnChipL2Link(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 50000 {
		t.Fatalf("instructions = %d", res.Instructions)
	}
}

func TestBaselineLinks(t *testing.T) {
	if EconomyMemory().Latency != 30 || EconomyMemory().BytesPerCycle != 4 {
		t.Error("economy link wrong")
	}
	if HighPerformanceMemory().Latency != 12 || HighPerformanceMemory().BytesPerCycle != 8 {
		t.Error("high-performance link wrong")
	}
	if OnChipL2Link().Latency != 6 || OnChipL2Link().BytesPerCycle != 16 {
		t.Error("on-chip link wrong")
	}
}
