package ibsim_test

import (
	"fmt"

	"ibsim"
)

// The examples below double as godoc documentation and as determinism
// guards: every workload is seeded, so the printed numbers are exact and
// any drift in the generator or simulators fails the example.

func ExampleSimulateCache() {
	w, _ := ibsim.LoadWorkload("gs")
	st, _ := ibsim.SimulateCache(w, ibsim.CacheConfig{Size: 8192, LineSize: 32, Assoc: 1}, 500_000)
	fmt.Printf("gs misses per 100 instructions: %.2f\n", 100*st.MissRatio())
	// Output:
	// gs misses per 100 instructions: 5.06
}

func ExampleSimulateFetch() {
	w, _ := ibsim.LoadWorkload("verilog")
	res, _ := ibsim.SimulateFetch(w, ibsim.FetchConfig{
		L1:                ibsim.CacheConfig{Size: 8192, LineSize: 16, Assoc: 1},
		Link:              ibsim.OnChipL2Link(),
		StreamBufferLines: 6,
	}, 300_000)
	fmt.Printf("CPIinstr %.3f with %d stream-buffer hits\n", res.CPIinstr(), res.BufferHits)
	// Output:
	// CPIinstr 0.140 with 21613 stream-buffer hits
}

func ExampleLoadWorkload() {
	w, err := ibsim.LoadWorkload("groff")
	if err != nil {
		panic(err)
	}
	fmt.Println(w.Description)
	fmt.Printf("footprint: %d KB across %d domains\n", w.Footprint()/1024, len(w.ActiveDomains()))
	// Output:
	// GNU groff 1.09: nroff rewritten in C++, same input
	// footprint: 357 KB across 3 domains
}

func ExampleAnalyzeWorkloadLocality() {
	w, _ := ibsim.LoadWorkload("eqntott")
	a, _ := ibsim.AnalyzeWorkloadLocality(w, 32, 200_000)
	fmt.Printf("mean sequential run: %.1f instructions\n", a.MeanRunLength())
	fmt.Printf("8-KB fully-assoc LRU miss ratio: %.2f%%\n", 100*a.MissRatioAt(8*1024))
	// Output:
	// mean sequential run: 11.3 instructions
	// 8-KB fully-assoc LRU miss ratio: 0.18%
}

func ExampleWorkload_Scale() {
	gcc, _ := ibsim.LoadWorkload("gcc")
	bloated := gcc.Scale(1.5)
	fmt.Printf("%s grows from %d to %d procedures\n",
		gcc.Name, gcc.Domains[ibsim.User].Procs, bloated.Domains[ibsim.User].Procs)
	// Output:
	// gcc grows from 310 to 465 procedures
}
