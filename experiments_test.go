package ibsim

import (
	"strings"
	"testing"
)

// TestEveryExperimentWiring runs each public experiment constructor once at
// a tiny budget and checks its rendering is non-trivial — guarding the
// facade wiring and the render paths end to end. Shape assertions live in
// internal/experiments; this is the public-API smoke pass.
func TestEveryExperimentWiring(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment once")
	}
	opt := Options{Instructions: 60_000, Trials: 2}

	type namedRender struct {
		name string
		run  func() (string, error)
	}
	cases := []namedRender{
		{"Table1", func() (string, error) { r, err := Table1(opt); return render(r, err) }},
		{"Table3", func() (string, error) { r, err := Table3(opt); return render(r, err) }},
		{"Table4", func() (string, error) { r, err := Table4(opt); return render(r, err) }},
		{"Table5", func() (string, error) { r, err := Table5(opt); return render(r, err) }},
		{"Table6", func() (string, error) { r, err := Table6(opt); return render(r, err) }},
		{"Table7", func() (string, error) { r, err := Table7(opt); return render(r, err) }},
		{"Table8", func() (string, error) { r, err := Table8(opt); return render(r, err) }},
		{"Figure1", func() (string, error) { r, err := Figure1(opt); return render(r, err) }},
		{"Figure3", func() (string, error) { r, err := Figure3(opt); return render(r, err) }},
		{"Figure4", func() (string, error) { r, err := Figure4(opt); return render(r, err) }},
		{"Figure5", func() (string, error) {
			r, err := Figure5(Options{Instructions: 30_000, Trials: 2})
			return render(r, err)
		}},
		{"Figure6", func() (string, error) { r, err := Figure6(opt); return render(r, err) }},
		{"Figure7", func() (string, error) { r, err := Figure7(opt); return render(r, err) }},
		{"ExtensionVictim", func() (string, error) { r, err := ExtensionVictim(opt); return render(r, err) }},
		{"ExtensionMultiStream", func() (string, error) { r, err := ExtensionMultiStream(opt); return render(r, err) }},
		{"ExtensionIssueWidth", func() (string, error) { r, err := ExtensionIssueWidth(opt); return render(r, err) }},
		{"ExtensionTLB", func() (string, error) { r, err := ExtensionTLB(opt); return render(r, err) }},
		{"ExtensionPlacement", func() (string, error) { r, err := ExtensionPlacement(opt); return render(r, err) }},
		{"ExtensionCML", func() (string, error) { r, err := ExtensionCML(opt); return render(r, err) }},
		{"ExtensionUnifiedL2", func() (string, error) { r, err := ExtensionUnifiedL2(opt); return render(r, err) }},
		{"ExtensionAssocLatency", func() (string, error) { r, err := ExtensionAssocLatency(opt); return render(r, err) }},
		{"ExtensionInterleave", func() (string, error) { r, err := ExtensionInterleave(opt); return render(r, err) }},
		{"ExtensionDualPort", func() (string, error) { r, err := ExtensionDualPort(opt); return render(r, err) }},
		{"SPECContrast", func() (string, error) { r, err := SPECContrast(opt); return render(r, err) }},
		{"AblationSubBlock", func() (string, error) { r, err := AblationSubBlock(opt); return render(r, err) }},
		{"AblationPagePolicy", func() (string, error) { r, err := AblationPagePolicy(opt); return render(r, err) }},
		{"AblationReplacement", func() (string, error) { r, err := AblationReplacement(opt); return render(r, err) }},
		{"AblationWriteBuffer", func() (string, error) { r, err := AblationWriteBuffer(opt); return render(r, err) }},
		{"MethodologyValidation", func() (string, error) { r, err := MethodologyValidation(opt); return render(r, err) }},
		{"SamplingStudy", func() (string, error) { r, err := SamplingStudy(opt); return render(r, err) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			out, err := c.run()
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			if len(out) < 80 || !strings.Contains(out, "\n") {
				t.Fatalf("%s rendered %d bytes — malformed:\n%s", c.name, len(out), out)
			}
		})
	}

	// Descriptive exhibits.
	if !strings.Contains(Table2(), "mpeg_play") {
		t.Error("Table2 missing workloads")
	}
	if !strings.Contains(Figure2(), "Kernel") {
		t.Error("Figure2 missing domains")
	}
}

// render normalizes the (result, error) pair of any experiment.
func render(r interface{ Render() string }, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}
